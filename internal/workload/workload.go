// Package workload builds the deterministic topologies and traffic the
// experiment harness drives: enterprise-shaped switch trees, host
// populations with users and applications, and seeded flow-intent streams.
// Everything is reproducible from the seed.
package workload

import (
	"fmt"
	"math/rand"

	"identxx/internal/flow"
	"identxx/internal/hostinfo"
	"identxx/internal/netaddr"
	"identxx/internal/netsim"
)

// App describes an application installed on simulated hosts.
type App struct {
	Name    string
	Path    string
	Version string
	Vendor  string
	Type    string
	// DstPort is the server port the application talks to (or listens on).
	DstPort netaddr.Port
	// Server marks apps that listen rather than connect.
	Server bool
}

// Exe converts the app to a hostinfo executable.
func (a App) Exe() hostinfo.Executable {
	return hostinfo.Executable{
		Path: a.Path, Name: a.Name, Version: a.Version, Vendor: a.Vendor, Type: a.Type,
	}
}

// The standard application mix used across experiments; ports and names
// follow the paper's examples (skype on 80 is exactly the §1 dilemma).
var (
	Firefox     = App{Name: "firefox", Path: "/usr/bin/firefox", Version: "3.5", Vendor: "mozilla.org", Type: "browser", DstPort: 80}
	SSH         = App{Name: "ssh", Path: "/usr/bin/ssh", Version: "5.2", Vendor: "openssh.org", Type: "remote-shell", DstPort: 22}
	Skype       = App{Name: "skype", Path: "/usr/bin/skype", Version: "210", Vendor: "skype.com", Type: "voip", DstPort: 80}
	OldSkype    = App{Name: "skype", Path: "/usr/bin/skype", Version: "150", Vendor: "skype.com", Type: "voip", DstPort: 80}
	Thunderbird = App{Name: "thunderbird", Path: "/usr/bin/thunderbird", Version: "2.0", Vendor: "mozilla.org", Type: "email-client", DstPort: 25}
	Dropbox     = App{Name: "dropbox", Path: "/usr/bin/dropbox", Version: "0.7", Vendor: "dropbox.com", Type: "sync", DstPort: 17500}
	ResearchApp = App{Name: "research-app", Path: "/usr/bin/research-app", Version: "1", Vendor: "lab.local", Type: "research", DstPort: 7777}
	HTTPD       = App{Name: "httpd", Path: "/usr/sbin/httpd", Version: "2.2", Vendor: "apache.org", Type: "web-server", DstPort: 80, Server: true}
	SMTPD       = App{Name: "smtpd", Path: "/usr/sbin/smtpd", Version: "8.14", Vendor: "sendmail.org", Type: "email-server", DstPort: 25, Server: true}
	SSHD        = App{Name: "sshd", Path: "/usr/sbin/sshd", Version: "5.2", Vendor: "openssh.org", Type: "remote-shell", DstPort: 22, Server: true}
)

// ClientApps is the default desktop mix.
var ClientApps = []App{Firefox, SSH, Skype, Thunderbird, Dropbox}

// Station is one populated end-host: its simulator handle, its user, and
// the processes started for each installed app.
type Station struct {
	Host *netsim.Host
	User *hostinfo.User
	Proc map[string]*hostinfo.Process // app name -> process
}

// StartFlow opens a flow from the named app to dst.
func (s *Station) StartFlow(app string, dst netaddr.IP, port netaddr.Port) error {
	_, err := s.Open(app, dst, port)
	return err
}

// Open is StartFlow returning the opened flow's 5-tuple, for callers that
// send follow-up packets on the connection.
func (s *Station) Open(app string, dst netaddr.IP, port netaddr.Port) (flow.Five, error) {
	p, ok := s.Proc[app]
	if !ok {
		return flow.Five{}, fmt.Errorf("workload: station %s has no app %q", s.Host.Name, app)
	}
	return s.Host.StartFlow(p.PID, dst, port)
}

// Populate installs user and apps on a host: client apps get processes,
// server apps also listen on their port (servers run as system users so
// privileged ports bind, mirroring §5.4).
func Populate(h *netsim.Host, userName string, groups []string, apps ...App) *Station {
	st := &Station{Host: h, Proc: make(map[string]*hostinfo.Process)}
	for _, a := range apps {
		if a.Server {
			sys := ensureSystemUser(h, a.Name)
			p := h.Info.Exec(sys, a.Exe())
			if err := h.Info.Listen(p.PID, netaddr.ProtoTCP, a.DstPort); err != nil {
				panic(fmt.Sprintf("workload: %s listen %d: %v", h.Name, a.DstPort, err))
			}
			st.Proc[a.Name] = p
			continue
		}
		if st.User == nil {
			st.User = h.Info.AddUser(userName, groups...)
		}
		st.Proc[a.Name] = h.Info.Exec(st.User, a.Exe())
	}
	if st.User == nil {
		st.User, _ = h.Info.UserByName(userName)
		if st.User == nil {
			st.User = h.Info.AddUser(userName, groups...)
		}
	}
	return st
}

func ensureSystemUser(h *netsim.Host, name string) *hostinfo.User {
	if u, ok := h.Info.UserByName(name); ok {
		return u
	}
	return h.Info.AddSystemUser(name)
}

// Tree describes a built topology.
type Tree struct {
	Net      *netsim.Network
	Root     *netsim.SwitchNode
	Edges    []*netsim.SwitchNode
	Stations []*Station
	Servers  []*Station
}

// AllSwitches returns root plus edges.
func (t *Tree) AllSwitches() []*netsim.SwitchNode {
	out := []*netsim.SwitchNode{t.Root}
	out = append(out, t.Edges...)
	return out
}

// BuildTree constructs a two-level enterprise: a root switch with
// edgeCount edge switches, hostsPerEdge client stations per edge (user
// "u<i>" in group "users", the client mix installed), and one server host
// (httpd+smtpd+sshd) on the root. Subnet 10.e.h.0/16 per edge.
func BuildTree(n *netsim.Network, edgeCount, hostsPerEdge int) *Tree {
	t := &Tree{Net: n}
	t.Root = n.AddSwitch("root", 0)
	serverHost := n.AddHost("server", netaddr.IPv4(10, 200, 0, 1))
	n.ConnectHost(serverHost, t.Root, 0)
	srv := Populate(serverHost, "admin", []string{"wheel"}, HTTPD, SMTPD, SSHD)
	t.Servers = append(t.Servers, srv)

	idx := 0
	for e := 0; e < edgeCount; e++ {
		edge := n.AddSwitch(fmt.Sprintf("edge%d", e), 0)
		n.ConnectSwitches(t.Root, edge, 0)
		t.Edges = append(t.Edges, edge)
		for hI := 0; hI < hostsPerEdge; hI++ {
			ip := netaddr.IPv4(10, byte(e), byte(hI), 2)
			h := n.AddHost(fmt.Sprintf("pc%d", idx), ip)
			n.ConnectHost(h, edge, 0)
			st := Populate(h, fmt.Sprintf("u%d", idx), []string{"users"}, ClientApps...)
			t.Stations = append(t.Stations, st)
			idx++
		}
	}
	return t
}

// Intent is one flow the generator wants opened.
type Intent struct {
	Src *Station
	App App
	Dst netaddr.IP
	// Port defaults to the app's DstPort.
	Port netaddr.Port
}

// Generator emits a deterministic stream of flow intents over a tree.
type Generator struct {
	rng  *rand.Rand
	tree *Tree
	mix  []App
}

// NewGenerator seeds a generator with the client mix.
func NewGenerator(tree *Tree, seed int64, mix ...App) *Generator {
	if len(mix) == 0 {
		mix = ClientApps
	}
	return &Generator{rng: rand.New(rand.NewSource(seed)), tree: tree, mix: mix}
}

// Next picks a random station, app, and destination. Skype flows target
// another station (peer-to-peer); everything else targets the server.
func (g *Generator) Next() Intent {
	src := g.tree.Stations[g.rng.Intn(len(g.tree.Stations))]
	app := g.mix[g.rng.Intn(len(g.mix))]
	in := Intent{Src: src, App: app, Port: app.DstPort}
	if app.Name == "skype" && len(g.tree.Stations) > 1 {
		for {
			dst := g.tree.Stations[g.rng.Intn(len(g.tree.Stations))]
			if dst != src {
				in.Dst = dst.Host.IP()
				return in
			}
		}
	}
	in.Dst = g.tree.Servers[0].Host.IP()
	return in
}

// Open issues the intent into the network. Destination skype stations need
// a listener; Open installs one lazily.
func (g *Generator) Open(in Intent) error {
	if in.App.Name == "skype" {
		if dst, ok := g.tree.Net.HostByIP(in.Dst); ok {
			ensureSkypeListener(dst, in.Port)
		}
	}
	return in.Src.StartFlow(in.App.Name, in.Dst, in.Port)
}

func ensureSkypeListener(h *netsim.Host, port netaddr.Port) {
	probe := flow.Five{DstIP: h.Info.IP, Proto: netaddr.ProtoTCP, DstPort: port}
	if _, ok := h.Info.OwnerOf(probe, hostinfo.RoleDestination); ok {
		return
	}
	var u *hostinfo.User
	if port < 1024 {
		// Skype's port-80 listener needs the superuser-endorsement path of
		// §5.4: a privileged helper binds the port.
		u = ensureSystemUser(h, "skype-helper")
	} else {
		var ok bool
		u, ok = h.Info.UserByName("skype-peer")
		if !ok {
			u = h.Info.AddUser("skype-peer", "users")
		}
	}
	p := h.Info.Exec(u, Skype.Exe())
	// Ignore conflicts: another intent may have raced the listener in.
	_ = h.Info.Listen(p.PID, netaddr.ProtoTCP, port)
}
