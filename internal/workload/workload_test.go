package workload

import (
	"testing"

	"identxx/internal/flow"
	"identxx/internal/hostinfo"
	"identxx/internal/netaddr"
	"identxx/internal/netsim"
)

func TestBuildTreeShape(t *testing.T) {
	n := netsim.New()
	tree := BuildTree(n, 3, 4)
	if len(tree.Edges) != 3 {
		t.Errorf("edges = %d", len(tree.Edges))
	}
	if len(tree.Stations) != 12 {
		t.Errorf("stations = %d", len(tree.Stations))
	}
	if len(tree.Servers) != 1 {
		t.Errorf("servers = %d", len(tree.Servers))
	}
	if len(tree.AllSwitches()) != 4 {
		t.Errorf("switches = %d", len(tree.AllSwitches()))
	}
	// Paths exist between any station and the server.
	for _, st := range tree.Stations {
		if _, err := n.Path(st.Host.IP(), tree.Servers[0].Host.IP()); err != nil {
			t.Fatalf("no path from %s: %v", st.Host.Name, err)
		}
	}
}

func TestPopulateServersListen(t *testing.T) {
	n := netsim.New()
	tree := BuildTree(n, 1, 1)
	srv := tree.Servers[0]
	for _, app := range []App{HTTPD, SMTPD, SSHD} {
		probe := flow.Five{
			SrcIP: tree.Stations[0].Host.IP(), DstIP: srv.Host.IP(),
			Proto: netaddr.ProtoTCP, SrcPort: 40000, DstPort: app.DstPort,
		}
		proc, ok := srv.Host.Info.OwnerOf(probe, hostinfo.RoleDestination)
		if !ok {
			t.Errorf("no listener for %s", app.Name)
			continue
		}
		if proc.Exe.Name != app.Name {
			t.Errorf("port %d owned by %s, want %s", app.DstPort, proc.Exe.Name, app.Name)
		}
		// Server daemons run as system users (privileged ports, §5.4).
		if proc.User.UID >= 1000 {
			t.Errorf("%s runs as uid %d", app.Name, proc.User.UID)
		}
	}
}

func TestStationStartFlowRegistersOwnership(t *testing.T) {
	n := netsim.New()
	tree := BuildTree(n, 1, 2)
	st := tree.Stations[0]
	if err := st.StartFlow("firefox", tree.Servers[0].Host.IP(), 80); err != nil {
		t.Fatal(err)
	}
	// The OS now attributes a flow to firefox.
	found := false
	for name, p := range st.Proc {
		if name == "firefox" && p != nil {
			found = true
		}
	}
	if !found {
		t.Fatal("no firefox process")
	}
	if err := st.StartFlow("nonexistent", tree.Servers[0].Host.IP(), 80); err == nil {
		t.Error("unknown app should error")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	seq := func() []string {
		n := netsim.New()
		tree := BuildTree(n, 2, 3)
		g := NewGenerator(tree, 42)
		var out []string
		for i := 0; i < 50; i++ {
			in := g.Next()
			out = append(out, in.Src.Host.Name+"/"+in.App.Name+"/"+in.Dst.String())
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestGeneratorSkypeTargetsPeers(t *testing.T) {
	n := netsim.New()
	tree := BuildTree(n, 2, 2)
	g := NewGenerator(tree, 7, Skype)
	for i := 0; i < 20; i++ {
		in := g.Next()
		if in.Dst == tree.Servers[0].Host.IP() {
			t.Fatal("skype intent targeted the server")
		}
		if in.Src.Host.IP() == in.Dst {
			t.Fatal("skype intent targeted itself")
		}
	}
}

func TestGeneratorOpenSkypeInstallsListener(t *testing.T) {
	n := netsim.New()
	tree := BuildTree(n, 1, 2)
	g := NewGenerator(tree, 7, Skype)
	in := g.Next()
	if err := g.Open(in); err != nil {
		t.Fatal(err)
	}
	dst, _ := tree.Net.HostByIP(in.Dst)
	probe := flow.Five{DstIP: in.Dst, Proto: netaddr.ProtoTCP, DstPort: in.Port}
	if _, ok := dst.Info.OwnerOf(probe, hostinfo.RoleDestination); !ok {
		t.Error("skype listener not installed at destination")
	}
	// Idempotent.
	if err := g.Open(in); err != nil {
		t.Errorf("second open failed: %v", err)
	}
}

func TestAppExeHashesDiffer(t *testing.T) {
	if Skype.Exe().Hash() == OldSkype.Exe().Hash() {
		t.Error("skype 210 and 150 should have different hashes")
	}
	if Skype.Exe().Hash() != Skype.Exe().Hash() {
		t.Error("hash not deterministic")
	}
}
