package cluster

// Satellite acceptance for the scale-out PR: replica failover loses zero
// revocations. Two replicas, each running the full production query plane
// (query.Engine over query.Pool against real daemon.Server instances on
// loopback TCP), split ownership of four live flows installed on a shared
// real switch. The owning replica of half the flows dies; endpoint facts
// then change (the source process exits) while those flows are
// unsupervised; the survivor takes over. Conservation means every flow
// stops forwarding: the survivor's own flows are torn down by the daemon
// push it is subscribed for, and the dead replica's flows are swept at
// takeover so their next packet re-decides — and is denied — under current
// endpoint state. Failover is resubscribe, not restart.

import (
	"testing"
	"time"

	"identxx/internal/core"
	"identxx/internal/daemon"
	"identxx/internal/flow"
	"identxx/internal/hostinfo"
	"identxx/internal/netaddr"
	"identxx/internal/openflow"
	"identxx/internal/pf"
	"identxx/internal/query"
	"identxx/internal/wire"
	"identxx/internal/workload"
)

type failoverHost struct {
	ip   netaddr.IP
	info *hostinfo.Host
	proc *hostinfo.Process
	addr string
	d    *daemon.Daemon
}

func startFailoverHost(t *testing.T, name, ip, user string) *failoverHost {
	t.Helper()
	h := &failoverHost{ip: netaddr.MustParseIP(ip)}
	h.info = hostinfo.New(name, h.ip, netaddr.MAC(1))
	u := h.info.AddUser(user, "users")
	h.proc = h.info.Exec(u, workload.Skype.Exe())
	d := daemon.New(h.info)
	h.d = d
	d.InstallConfig(&daemon.ConfigFile{Apps: []*daemon.AppConfig{{
		Path:  workload.Skype.Path,
		Pairs: []wire.KV{{Key: wire.KeyName, Value: workload.Skype.Name}},
	}}}, true)
	srv := daemon.NewServer(d)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h.addr = addr.String()
	t.Cleanup(func() { srv.Close() })
	return h
}

// failoverReplica is one full controller replica: pool, engine, controller.
type failoverReplica struct {
	pool *query.Pool
	eng  *query.Engine
	ctl  *core.Controller
}

func startFailoverReplica(t *testing.T, name string, resolver query.StaticResolver, sw *openflow.Switch) *failoverReplica {
	t.Helper()
	r := &failoverReplica{}
	r.pool = query.NewPool(query.PoolConfig{Resolver: resolver})
	t.Cleanup(func() { r.pool.Close() })
	r.eng = query.NewEngine(query.Config{Lower: r.pool})
	t.Cleanup(r.eng.Close)
	r.ctl = core.New(core.Config{
		Name: name,
		Policy: pf.MustCompile(name, `
block all
pass from any to any with eq(@src[name], skype) with eq(@dst[name], skype) keep state
`),
		Transport:        r.eng,
		Topology:         hopTopo{hops: []core.Hop{{Datapath: 1, OutPort: 2}}},
		InstallEntries:   true,
		AsyncQueries:     true,
		ResponseCacheTTL: time.Hour,
		Revocation:       true,
	})
	r.ctl.AddDatapath(sw)
	if !r.eng.SetUpdateHandler(r.ctl.HandleUpdate) {
		t.Fatal("engine lower does not push updates")
	}
	return r
}

func TestFailoverLosesNoRevocations(t *testing.T) {
	src := startFailoverHost(t, "client", "10.14.0.1", "alice")
	dst := startFailoverHost(t, "server", "10.14.0.2", "bob")
	resolver := query.StaticResolver{src.ip: src.addr, dst.ip: dst.addr}

	// One real switch shared by both replicas (each holds its own
	// datapath registration, as two processes would each hold a channel).
	sw := openflow.NewSwitch(1, "s1", 0)
	repA := startFailoverReplica(t, "replica-a", resolver, sw)
	repB := startFailoverReplica(t, "replica-b", resolver, sw)

	var ra, rb *Router
	ra = NewRouter(repA.ctl, Member{ID: "A"}, Options{
		Dial: func(m Member) (Link, error) { return Loopback{Peer: rb}, nil },
	})
	rb = NewRouter(repB.ctl, Member{ID: "B"}, Options{
		Dial: func(m Member) (Link, error) { return Loopback{Peer: ra}, nil },
	})
	ms := []Member{{ID: "A"}, {ID: "B"}}
	if err := ra.SetMembers(ms); err != nil {
		t.Fatal(err)
	}
	if err := rb.SetMembers(ms); err != nil {
		t.Fatal(err)
	}

	// Four live flows — two owned by each replica — established for real on
	// the hosts so the daemons know and push about them.
	if err := dst.info.Listen(dst.proc.PID, netaddr.ProtoTCP, 5060); err != nil {
		t.Fatal(err)
	}
	var flows []flow.Five
	byA, byB := 0, 0
	for p := netaddr.Port(40000); (byA < 2 || byB < 2) && p < 41000; p++ {
		f := flow.Five{SrcIP: src.ip, DstIP: dst.ip, Proto: netaddr.ProtoTCP, SrcPort: p, DstPort: 5060}
		if ra.Owns(f) {
			if byA == 2 {
				continue
			}
			byA++
		} else {
			if byB == 2 {
				continue
			}
			byB++
		}
		connected, err := src.info.Connect(src.proc.PID, f)
		if err != nil {
			t.Fatal(err)
		}
		flows = append(flows, connected)
	}
	if byA != 2 || byB != 2 {
		t.Fatalf("ownership split %d/%d, want 2/2", byA, byB)
	}

	// All packet-ins arrive at A; A forwards B's half over the link.
	for _, f := range flows {
		ra.HandleEvent(testPacketIn(f))
	}
	waitUntil(t, "all flows admitted", func() bool {
		return repA.ctl.Counters.Get("flows_allowed")+repB.ctl.Counters.Get("flows_allowed") == 4
	})
	waitUntil(t, "entries installed", func() bool { return sw.Table.Len() == 8 })
	if got := ra.Counters.Get("cluster_events_forwarded"); got != 2 {
		t.Fatalf("A forwarded %d events, want 2", got)
	}
	// Both replicas are subscribed to both daemons for their owned flows.
	waitUntil(t, "replica A hellos", func() bool {
		return repA.ctl.Counters.Get("revocations_hellos") >= 2
	})
	waitUntil(t, "replica B hellos", func() bool {
		return repB.ctl.Counters.Get("revocations_hellos") >= 2
	})

	// ---- Replica A dies mid-subscription. ----
	repA.pool.Close()
	repA.eng.Close()

	// The revocation moment happens while A's flows are unsupervised:
	// alice's skype exits. B's subscriptions push the change for B's own
	// flows; nothing is listening for A's.
	src.info.Kill(src.proc.PID)
	waitUntil(t, "survivor's own flows torn down", func() bool {
		return sw.Table.Len() == 4
	})

	// Failover: B declares A dead and takes over. The takeover sweep must
	// delete A's orphaned entries — B holds no state for them, so their
	// next packet re-decides under current endpoint state.
	if err := rb.RemoveMember("A"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "orphaned entries swept", func() bool { return sw.Table.Len() == 0 })
	if got := rb.Counters.Get("cluster_takeover_swept"); got != 4 {
		t.Errorf("cluster_takeover_swept = %d, want 4", got)
	}

	// Conservation: re-driving the dead replica's flows punts to B, which
	// re-queries the daemons and denies — the process is gone. Zero flows
	// survive the revocation.
	for _, f := range flows {
		if ra.Owns(f) {
			rb.HandleEvent(testPacketIn(f))
		}
	}
	waitUntil(t, "re-driven flows denied", func() bool {
		return repB.ctl.Counters.Get("flows_denied") >= 2
	})
	// Denials negative-cache as drop entries; nothing may still forward.
	for _, e := range sw.Table.Entries() {
		if len(e.Actions) != 1 || e.Actions[0].Type != openflow.ActionDrop {
			t.Fatalf("entry %+v still forwarding after failover revocation", e.Match)
		}
	}
}
