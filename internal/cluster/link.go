package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"identxx/internal/openflow"
	"identxx/internal/wire"
)

// Link is one replica's handle on a peer: forward a packet-in to it, push
// a config snapshot at it. Implementations must be safe for concurrent
// use — the Router calls ForwardEvent from every packet-in goroutine.
type Link interface {
	// ForwardEvent hands a non-owned packet-in to the peer and waits for
	// its ack (the peer acks after its decision completes, so forwarding
	// inherits the decision path's backpressure). A non-nil error means
	// the event may not have been processed; the Router falls back to a
	// local decision.
	ForwardEvent(ev openflow.PacketIn) error
	// PushSnapshot delivers an epoch-fenced config snapshot. ErrStaleEpoch
	// means the peer already holds a config that supersedes s — not a
	// transport failure.
	PushSnapshot(s *Snapshot) error
	Close() error
}

// ErrStaleEpoch is returned by snapshot application and pushes when the
// receiver's applied (epoch, origin) already supersedes the snapshot's.
var ErrStaleEpoch = errors.New("cluster: snapshot epoch not newer than applied")

// errLinkDown is the fast-fail result while a peer link is in dial
// backoff or its connection has just died.
var errLinkDown = errors.New("cluster: peer link down")

// Loopback is the in-process Link: forwards become direct calls into the
// peer Router. It is what in-process replica sets (tests, benchmarks, one
// process hosting several replicas) use; semantics match the TCP link
// minus the wire.
type Loopback struct{ Peer *Router }

func (l Loopback) ForwardEvent(ev openflow.PacketIn) error {
	l.Peer.DeliverEvent(ev)
	return nil
}

func (l Loopback) PushSnapshot(s *Snapshot) error { return l.Peer.ApplySnapshot(s) }
func (l Loopback) Close() error                   { return nil }

// Inter-controller link tuning. The link reuses the query plane's shape —
// one pipelined connection per peer, FIFO correlation, per-request
// deadlines, immediate redial after a connection death and exponential
// backoff after dial failures — with the same constants that plane
// settled on.
const (
	linkDialTimeout    = 1 * time.Second
	linkRequestTimeout = 2 * time.Second
	linkInitialBackoff = 50 * time.Millisecond
	linkMaxBackoff     = 2 * time.Second
	// linkMaxInFlight bounds pipelined unacked requests per peer; beyond
	// it, forwards fail fast (and the Router decides locally) rather than
	// queueing unboundedly behind a slow owner.
	linkMaxInFlight = 256
)

// TCPLink is a Link over one pipelined TCP connection. Requests (events,
// snapshots) are written in FIFO order under sendMu; the peer processes
// each connection serially and acks in order, so the reader completes
// waiters front-to-front with no request IDs on the wire. A waiter that
// hits its deadline abandons its slot (the reader discards the eventual
// ack into the slot's buffered channel) and the connection is torn down —
// a peer that stopped acking is indistinguishable from a dead one, and
// redialing is how the link heals.
type TCPLink struct {
	addr string

	sendMu  sync.Mutex
	conn    net.Conn
	bw      *bufio.Writer
	acks    chan chan byte // FIFO of waiter slots for this connection
	gen     uint64         // bumped by every teardown; guards against double-teardown
	nextTry time.Time      // dial gate while backing off
	backoff time.Duration
}

// DialTCP returns a TCPLink for addr. The connection is established
// lazily on first use and re-established as needed; construction never
// blocks.
func DialTCP(addr string) *TCPLink {
	return &TCPLink{addr: addr, backoff: linkInitialBackoff}
}

func (l *TCPLink) ForwardEvent(ev openflow.PacketIn) error {
	// A traced event rides the 'T' frame kind: the 8-byte trace ID prefix
	// lets the owner's decision stitch to the forwarder's trace. Untraced
	// events keep the byte-identical legacy 'E' encoding, so a ring where
	// tracing is off never sees the newer kind (see wire.FrameEventTraced).
	if ev.TraceID != 0 {
		prefix := binary.BigEndian.AppendUint64(make([]byte, 0, 8+eventHeaderLen+len(ev.Frame)), ev.TraceID)
		if err := l.forwardEventFrame(wire.FrameEventTraced, prefix, ev); err == nil {
			return nil
		}
		// A peer built before FrameEventTraced fails its ReadFrame on the
		// unknown kind and kills the connection instead of acking, which
		// surfaces here as a link error. Retry once as the legacy 'E'
		// frame, dropping the ID: a mixed-version ring degrades to
		// untraced forwarding, not to a local-decision fallback per
		// traced event.
	}
	return l.forwardEventFrame(wire.FrameEvent, nil, ev)
}

// forwardEventFrame round-trips one packet-in as the given frame kind,
// with an optional payload prefix ahead of the event encoding.
func (l *TCPLink) forwardEventFrame(typ byte, prefix []byte, ev openflow.PacketIn) error {
	status, err := l.roundTrip(wire.Frame{
		Type:    typ,
		SrcIP:   ev.Tuple.SrcIP,
		DstIP:   ev.Tuple.DstIP,
		Payload: encodeEvent(prefix, ev),
	})
	if err != nil {
		return err
	}
	if status != ackOK {
		return fmt.Errorf("cluster: peer rejected event (status %d)", status)
	}
	return nil
}

func (l *TCPLink) PushSnapshot(s *Snapshot) error {
	status, err := l.roundTrip(wire.Frame{Type: wire.FrameSnapshot, Payload: encodeSnapshot(s)})
	if err != nil {
		return err
	}
	switch status {
	case ackOK:
		return nil
	case ackStale:
		return ErrStaleEpoch
	default:
		return fmt.Errorf("cluster: peer rejected snapshot (status %d)", status)
	}
}

// roundTrip writes one request frame and waits for its FIFO-correlated
// ack, dialing first when no connection is up.
func (l *TCPLink) roundTrip(f wire.Frame) (byte, error) {
	l.sendMu.Lock()
	if l.conn == nil {
		if time.Now().Before(l.nextTry) {
			l.sendMu.Unlock()
			return 0, errLinkDown
		}
		if err := l.dialLocked(); err != nil {
			// Failed dial: back off exponentially so a dead peer costs a
			// cheap time check, not a dial timeout, per forward.
			l.nextTry = time.Now().Add(l.backoff)
			if l.backoff *= 2; l.backoff > linkMaxBackoff {
				l.backoff = linkMaxBackoff
			}
			l.sendMu.Unlock()
			return 0, err
		}
	}
	slot := make(chan byte, 1)
	select {
	case l.acks <- slot:
	default:
		l.sendMu.Unlock()
		return 0, fmt.Errorf("cluster: peer %s pipeline full (%d in flight)", l.addr, linkMaxInFlight)
	}
	gen := l.gen
	if err := wire.WriteFrame(l.bw, f); err == nil {
		err = l.bw.Flush()
		if err != nil {
			l.sendMu.Unlock()
			l.teardown(gen)
			return 0, err
		}
	} else {
		l.sendMu.Unlock()
		l.teardown(gen)
		return 0, err
	}
	l.sendMu.Unlock()

	t := time.NewTimer(linkRequestTimeout)
	defer t.Stop()
	select {
	case status, ok := <-slot:
		if !ok {
			return 0, errLinkDown
		}
		return status, nil
	case <-t.C:
		// The peer stopped acking within the deadline: kill the
		// connection (failing the requests pipelined behind this one —
		// they were about to time out against the same wedged peer) and
		// let the next forward redial.
		l.teardown(gen)
		return 0, fmt.Errorf("cluster: peer %s ack deadline exceeded", l.addr)
	}
}

func (l *TCPLink) dialLocked() error {
	conn, err := net.DialTimeout("tcp", l.addr, linkDialTimeout)
	if err != nil {
		return err
	}
	l.conn = conn
	l.bw = bufio.NewWriter(conn)
	l.acks = make(chan chan byte, linkMaxInFlight)
	l.backoff = linkInitialBackoff
	l.nextTry = time.Time{}
	gen := l.gen
	go l.readAcks(conn, l.acks, gen)
	return nil
}

// readAcks is the connection's reader: it completes waiter slots in FIFO
// order until the connection dies, then fails every waiter still queued.
func (l *TCPLink) readAcks(conn net.Conn, acks chan chan byte, gen uint64) {
	br := bufio.NewReader(conn)
read:
	for {
		f, err := wire.ReadFrame(br)
		if err != nil {
			break
		}
		if f.Type != wire.FrameAck || len(f.Payload) < 1 {
			break
		}
		select {
		case slot := <-acks:
			slot <- f.Payload[0]
		default:
			// An ack nothing asked for: protocol violation; kill the
			// connection rather than guess at correlation.
			break read
		}
	}
	l.teardown(gen)
	for {
		select {
		case slot := <-acks:
			close(slot)
		default:
			return
		}
	}
}

// teardown closes the current connection and starts the fail-fast dial
// window, exactly once per generation: the reader, a writer hitting an
// error, and a waiter hitting its deadline can all observe the same death.
func (l *TCPLink) teardown(gen uint64) {
	l.sendMu.Lock()
	defer l.sendMu.Unlock()
	if l.gen != gen || l.conn == nil {
		return
	}
	l.conn.Close()
	l.conn, l.bw = nil, nil
	l.gen++
	// A connection that died after working gets an immediate redial on
	// the next forward (nextTry zero): transient resets should not
	// penalize the next flow. Only failed dials accumulate backoff.
	l.nextTry = time.Time{}
	l.backoff = linkInitialBackoff
}

func (l *TCPLink) Close() error {
	l.sendMu.Lock()
	defer l.sendMu.Unlock()
	if l.conn != nil {
		l.conn.Close()
		l.conn, l.bw = nil, nil
		l.gen++
	}
	// Gate redials far enough out that a closed link stays down.
	l.nextTry = time.Now().Add(24 * time.Hour)
	return nil
}

// Serve accepts inter-controller connections on ln and dispatches their
// frames into the Router until ln is closed. Each connection is processed
// serially — that is what makes FIFO acks correct — and independent
// connections in parallel.
func (r *Router) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go r.serveConn(conn)
	}
}

func (r *Router) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	ack := [1]byte{}
	for {
		f, err := wire.ReadFrame(br)
		if err != nil {
			return
		}
		switch f.Type {
		case wire.FrameEvent, wire.FrameEventTraced:
			payload := f.Payload
			var tid uint64
			if f.Type == wire.FrameEventTraced {
				if len(payload) < 8 {
					ack[0] = ackError
					break
				}
				tid = binary.BigEndian.Uint64(payload[:8])
				payload = payload[8:]
			}
			ev, err := decodeEvent(payload)
			if err != nil {
				ack[0] = ackError
			} else {
				ev.TraceID = tid
				r.DeliverEvent(ev)
				ack[0] = ackOK
			}
		case wire.FrameSnapshot:
			s, err := decodeSnapshot(f.Payload)
			if err != nil {
				ack[0] = ackError
			} else {
				switch r.ApplySnapshot(s) {
				case nil:
					ack[0] = ackOK
				case ErrStaleEpoch:
					ack[0] = ackStale
				default:
					ack[0] = ackError
				}
			}
		default:
			ack[0] = ackError
		}
		if err := wire.WriteFrame(bw, wire.Frame{Type: wire.FrameAck, Payload: ack[:]}); err != nil {
			return
		}
		// Flush only when the read side has drained: pipelined bursts get
		// their acks batched into one segment.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}
