package cluster

import (
	"bufio"
	"fmt"
	"net"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"identxx/internal/core"
	"identxx/internal/flow"
	"identxx/internal/netaddr"
	"identxx/internal/openflow"
	"identxx/internal/pf"
	"identxx/internal/wire"
)

// passTransport answers every endpoint query with name=skype, so the test
// policies admit or deny purely on what the policy text asks for.
type passTransport struct{}

func (passTransport) Query(host netaddr.IP, q wire.Query) (*wire.Response, time.Duration, error) {
	r := wire.NewResponse(q.Flow)
	r.Add(wire.KeyName, "skype")
	return r, 0, nil
}

type hopTopo struct{ hops []core.Hop }

func (t hopTopo) Path(src, dst netaddr.IP) ([]core.Hop, error) { return t.hops, nil }

const passPolicy = `
block all
pass from any to any with eq(@src[name], skype) keep state
`

func testController(t *testing.T, name string, install bool, hops []core.Hop) *core.Controller {
	t.Helper()
	c := core.New(core.Config{
		Name:             name,
		Policy:           pf.MustCompile(name, passPolicy),
		Transport:        passTransport{},
		Topology:         hopTopo{hops: hops},
		InstallEntries:   install,
		ResponseCacheTTL: time.Hour,
		Revocation:       true,
	})
	if !install {
		// HandleEvent drops events from unknown datapaths; non-install
		// tests still need switch 1 registered.
		c.AddDatapath(&sinkDatapath{id: 1})
	}
	return c
}

// sinkDatapath is a datapath that accepts and discards everything.
type sinkDatapath struct{ id uint64 }

func (d *sinkDatapath) DatapathID() uint64           { return d.id }
func (d *sinkDatapath) Apply(openflow.FlowMod) error { return nil }
func (d *sinkDatapath) PacketOut(uint16, []byte)     {}
func (d *sinkDatapath) ReleaseBuffer(uint32)         {}

func testFive(srcPort netaddr.Port) flow.Five {
	return flow.Five{
		SrcIP: netaddr.MustParseIP("10.9.0.1"), DstIP: netaddr.MustParseIP("10.9.0.2"),
		Proto: netaddr.ProtoTCP, SrcPort: srcPort, DstPort: 5060,
	}
}

func testPacketIn(five flow.Five) openflow.PacketIn {
	return openflow.PacketIn{
		SwitchID: 1,
		BufferID: openflow.BufferNone,
		InPort:   1,
		Tuple: flow.Ten{
			EthType: flow.EthTypeIPv4,
			SrcIP:   five.SrcIP, DstIP: five.DstIP, Proto: five.Proto,
			SrcPort: five.SrcPort, DstPort: five.DstPort,
		},
	}
}

// fiveOwnedBy scans source ports until it finds a flow whose owner under r
// matches want. Ownership is deterministic, so this always terminates fast.
func fiveOwnedBy(t *testing.T, r *Router, want bool) flow.Five {
	t.Helper()
	for p := netaddr.Port(20000); p < 21000; p++ {
		if f := testFive(p); r.Owns(f) == want {
			return f
		}
	}
	t.Fatal("no flow with requested ownership in 1000 ports")
	return flow.Five{}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOwnerHashDirectionAgnostic: both directions of a flow must land on
// the same owner, or reply packets of an admitted flow would punt to a
// replica holding no state for them.
func TestOwnerHashDirectionAgnostic(t *testing.T) {
	for p := netaddr.Port(1000); p < 1100; p++ {
		f := testFive(p)
		if ownerHash(f) != ownerHash(f.Reverse()) {
			t.Fatalf("ownerHash differs across directions for %v", f)
		}
	}
}

// TestOwnerIndependentOfMemberOrder: rendezvous ownership must be a
// function of the member set, not the order a replica happened to list it
// in — otherwise replicas with differently-ordered configs would disagree.
func TestOwnerIndependentOfMemberOrder(t *testing.T) {
	ms := []Member{{ID: "a"}, {ID: "b"}, {ID: "c"}, {ID: "d"}}
	ra := NewRouter(testController(t, "ra", false, nil), ms[0], Options{
		Dial: func(Member) (Link, error) { return nopLink{}, nil },
	})
	if err := ra.SetMembers(ms); err != nil {
		t.Fatal(err)
	}
	rb := NewRouter(testController(t, "rb", false, nil), ms[2], Options{
		Dial: func(Member) (Link, error) { return nopLink{}, nil },
	})
	if err := rb.SetMembers([]Member{ms[3], ms[1], ms[2], ms[0]}); err != nil {
		t.Fatal(err)
	}
	for p := netaddr.Port(1000); p < 1200; p++ {
		f := testFive(p)
		if got, want := rb.Owner(f).ID, ra.Owner(f).ID; got != want {
			t.Fatalf("owner of %v differs by member order: %s vs %s", f, got, want)
		}
	}
}

// TestRingShareBalance: HRW should split the flow space roughly evenly.
func TestRingShareBalance(t *testing.T) {
	ms := []Member{{ID: "r1"}, {ID: "r2"}, {ID: "r3"}, {ID: "r4"}}
	r := NewRouter(testController(t, "share", false, nil), ms[0], Options{
		Dial: func(Member) (Link, error) { return nopLink{}, nil },
	})
	if err := r.SetMembers(ms); err != nil {
		t.Fatal(err)
	}
	for _, st := range r.RingStats(16384) {
		if st.Share < 0.15 || st.Share > 0.35 {
			t.Errorf("member %s share %.3f, want ~0.25", st.Member.ID, st.Share)
		}
	}
}

// twoRouters builds an in-process two-replica cluster over Loopback links.
func twoRouters(t *testing.T, install bool, hops []core.Hop) (*Router, *Router) {
	t.Helper()
	ctlA := testController(t, "A", install, hops)
	ctlB := testController(t, "B", install, hops)
	var ra, rb *Router
	ra = NewRouter(ctlA, Member{ID: "A"}, Options{
		Dial: func(m Member) (Link, error) { return Loopback{Peer: rb}, nil },
	})
	rb = NewRouter(ctlB, Member{ID: "B"}, Options{
		Dial: func(m Member) (Link, error) { return Loopback{Peer: ra}, nil },
	})
	ms := []Member{{ID: "A"}, {ID: "B"}}
	if err := ra.SetMembers(ms); err != nil {
		t.Fatal(err)
	}
	if err := rb.SetMembers(ms); err != nil {
		t.Fatal(err)
	}
	return ra, rb
}

// TestLoopbackForwarding: events for flows owned by the peer are forwarded
// and decided there; owned events are decided locally.
func TestLoopbackForwarding(t *testing.T) {
	ra, rb := twoRouters(t, false, nil)

	mine := fiveOwnedBy(t, ra, true)
	theirs := fiveOwnedBy(t, ra, false)
	if !rb.Owns(theirs) {
		t.Fatal("routers disagree about ownership")
	}

	ra.HandleEvent(testPacketIn(mine))
	ra.HandleEvent(testPacketIn(theirs))

	if got := ra.Counters.Get("cluster_events_owned"); got != 1 {
		t.Errorf("A owned = %d, want 1", got)
	}
	if got := ra.Counters.Get("cluster_events_forwarded"); got != 1 {
		t.Errorf("A forwarded = %d, want 1", got)
	}
	if got := rb.Counters.Get("cluster_events_received"); got != 1 {
		t.Errorf("B received = %d, want 1", got)
	}
	if got := ra.Local().Counters.Get("flows_allowed"); got != 1 {
		t.Errorf("A decided %d flows, want 1", got)
	}
	if got := rb.Local().Counters.Get("flows_allowed"); got != 1 {
		t.Errorf("B decided %d flows, want 1", got)
	}
}

// TestSnapshotReplication: a policy write on one replica converges on the
// peer, epochs agree, and the peer enforces the new policy.
func TestSnapshotReplication(t *testing.T) {
	ra, rb := twoRouters(t, false, nil)

	if err := ra.SetPolicy("v2", "block all\n", false); err != nil {
		t.Fatal(err)
	}
	ea, oa := ra.Epoch()
	eb, ob := rb.Epoch()
	if ea != eb || oa != ob {
		t.Fatalf("epochs diverged: A=(%d,%s) B=(%d,%s)", ea, oa, eb, ob)
	}

	// The replicated block-all must now deny at B, for a flow B owns.
	f := fiveOwnedBy(t, rb, true)
	rb.HandleEvent(testPacketIn(f))
	if got := rb.Local().Counters.Get("flows_denied"); got != 1 {
		t.Errorf("B denied %d flows under replicated policy, want 1", got)
	}

	// Answer-on-behalf replication rides the same push.
	ip := netaddr.MustParseIP("10.9.0.7")
	ra.AnswerForHost(ip, wire.KV{Key: wire.KeyName, Value: "printer"})
	ea, _ = ra.Epoch()
	eb, _ = rb.Epoch()
	if ea != eb {
		t.Fatalf("epochs diverged after answer write: %d vs %d", ea, eb)
	}
}

// TestSnapshotEpochFence: stale snapshots are rejected with ErrStaleEpoch,
// and a snapshot that fails to compile does not advance the epoch (a later
// good snapshot at the same epoch must still apply).
func TestSnapshotEpochFence(t *testing.T) {
	_, rb := twoRouters(t, false, nil)
	epoch, _ := rb.Epoch()
	staleBase := rb.Counters.Get("cluster_snapshots_stale")

	stale := &Snapshot{Epoch: epoch, Origin: "", PolicyName: "old", PolicySrc: "block all\n"}
	if err := rb.ApplySnapshot(stale); err != ErrStaleEpoch {
		t.Fatalf("stale snapshot: got %v, want ErrStaleEpoch", err)
	}
	if got := rb.Counters.Get("cluster_snapshots_stale"); got != staleBase+1 {
		t.Errorf("cluster_snapshots_stale = %d, want %d", got, staleBase+1)
	}

	bad := &Snapshot{Epoch: epoch + 10, Origin: "x", PolicyName: "bad", PolicySrc: "pass from syntax error\n"}
	if err := rb.ApplySnapshot(bad); err == nil || err == ErrStaleEpoch {
		t.Fatalf("uncompilable snapshot: got %v, want compile error", err)
	}
	if e, _ := rb.Epoch(); e != epoch {
		t.Fatalf("compile failure advanced epoch to %d", e)
	}
	good := &Snapshot{Epoch: epoch + 10, Origin: "x", PolicyName: "good", PolicySrc: "block all\n"}
	if err := rb.ApplySnapshot(good); err != nil {
		t.Fatalf("good snapshot at same epoch after compile failure: %v", err)
	}
}

// TestEventCodecRoundTrip: the forwarded packet-in survives the wire.
func TestEventCodecRoundTrip(t *testing.T) {
	ev := openflow.PacketIn{
		SwitchID: 0x1122334455667788,
		BufferID: 42,
		InPort:   7,
		Reason:   openflow.ReasonNoMatch,
		Tuple: flow.Ten{
			InPort: 7, MACSrc: 0xa1a2a3a4a5a6, MACDst: 0xb1b2b3b4b5b6,
			EthType: flow.EthTypeIPv4, VLAN: 12,
			SrcIP: netaddr.MustParseIP("10.0.0.1"), DstIP: netaddr.MustParseIP("10.0.0.2"),
			Proto: netaddr.ProtoTCP, SrcPort: 40000, DstPort: 443,
		},
		Frame: []byte{0xde, 0xad, 0xbe, 0xef},
	}
	got, err := decodeEvent(encodeEvent(nil, ev))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ev) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, ev)
	}
}

// TestSnapshotCodecRoundTrip: config snapshots survive the wire, including
// answer values containing spaces and multi-line policy source.
func TestSnapshotCodecRoundTrip(t *testing.T) {
	s := &Snapshot{
		Epoch: 9, Origin: "replica-2",
		PolicyName: "prod", PolicySrc: passPolicy,
		DefaultBlock: true,
		Datapaths:    []uint64{1, 77},
		Answers: map[netaddr.IP][]wire.KV{
			netaddr.MustParseIP("10.0.0.9"): {
				{Key: wire.KeyName, Value: "laser printer 2"},
				{Key: "type", Value: "printer"},
			},
		},
	}
	got, err := decodeSnapshot(encodeSnapshot(s))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, s)
	}
}

// TestTCPLinkForwardSnapshotReconnect: the real inter-controller link —
// forwarded events and snapshot pushes over TCP, stale mapped to
// ErrStaleEpoch, and transparent redial after the connection dies.
func TestTCPLinkForwardSnapshotReconnect(t *testing.T) {
	rb := NewRouter(testController(t, "B", false, nil), Member{ID: "B"}, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go rb.Serve(ln)

	l := DialTCP(ln.Addr().String())
	t.Cleanup(func() { l.Close() })

	if err := l.ForwardEvent(testPacketIn(testFive(31000))); err != nil {
		t.Fatalf("forward: %v", err)
	}
	if got := rb.Counters.Get("cluster_events_received"); got != 1 {
		t.Errorf("received = %d, want 1", got)
	}

	epoch, _ := rb.Epoch()
	snap := &Snapshot{Epoch: epoch + 1, Origin: "A", PolicyName: "p", PolicySrc: "block all\n"}
	if err := l.PushSnapshot(snap); err != nil {
		t.Fatalf("push: %v", err)
	}
	if err := l.PushSnapshot(snap); err != ErrStaleEpoch {
		t.Fatalf("replayed push: got %v, want ErrStaleEpoch", err)
	}

	// Kill the connection out from under the link; the next forward must
	// heal by redialing (immediately — working connections don't back off).
	l.sendMu.Lock()
	conn := l.conn
	l.sendMu.Unlock()
	conn.Close()
	waitUntil(t, "link recovery", func() bool {
		return l.ForwardEvent(testPacketIn(testFive(31001))) == nil
	})
	waitUntil(t, "event after recovery", func() bool {
		return rb.Counters.Get("cluster_events_received") >= 2
	})
}

// TestTCPLinkTracedFallbackToLegacy: a peer built before FrameEventTraced
// fails on the unknown 'T' kind and kills the connection without acking;
// the link must retry the forward once as the legacy 'E' frame, so a
// mixed-version ring degrades to untraced forwarding instead of a
// local-decision fallback per traced event.
func TestTCPLinkTracedFallbackToLegacy(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })

	var legacyEvents atomic.Int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				br := bufio.NewReader(c)
				for {
					f, err := wire.ReadFrame(br)
					if err != nil || f.Type != wire.FrameEvent {
						// A stale decoder dies on any kind it doesn't
						// know; dropping the connection simulates that.
						return
					}
					legacyEvents.Add(1)
					if wire.WriteFrame(c, wire.Frame{Type: wire.FrameAck, Payload: []byte{ackOK}}) != nil {
						return
					}
				}
			}(conn)
		}
	}()

	l := DialTCP(ln.Addr().String())
	t.Cleanup(func() { l.Close() })

	ev := testPacketIn(testFive(32000))
	ev.TraceID = 0x1122334455667788
	if err := l.ForwardEvent(ev); err != nil {
		t.Fatalf("traced forward against stale peer: %v", err)
	}
	if got := legacyEvents.Load(); got != 1 {
		t.Errorf("legacy events received = %d, want 1 (forward must degrade to 'E')", got)
	}
}

// TestTakeoverSweep: after a ring rebuild, entries on the switch for flows
// this replica now owns but holds no state for are deleted (their next
// packet re-decides), while entries backed by local state are kept.
func TestTakeoverSweep(t *testing.T) {
	sw := openflow.NewSwitch(1, "s1", 0)
	hops := []core.Hop{{Datapath: 1, OutPort: 2}}

	// Replica A admits a flow and installs entries.
	ctlA := testController(t, "A", true, hops)
	ctlA.AddDatapath(sw)
	f := testFive(20000)
	ctlA.HandleEvent(testPacketIn(f))
	waitUntil(t, "entries installed", func() bool { return sw.Table.Len() == 2 })

	// A's own ring rebuild must not sweep entries A has state for.
	ra := NewRouter(ctlA, Member{ID: "A"}, Options{})
	if err := ra.SetMembers([]Member{{ID: "A"}}); err != nil {
		t.Fatal(err)
	}
	if got := sw.Table.Len(); got != 2 {
		t.Fatalf("owner's rebuild swept its own entries: table len %d", got)
	}
	if got := ra.Counters.Get("cluster_takeover_swept"); got != 0 {
		t.Errorf("cluster_takeover_swept = %d, want 0", got)
	}

	// Replica B takes over with no state for the flow: the orphan entries
	// must be swept so the flow's next packet punts to B.
	ctlB := testController(t, "B", true, hops)
	ctlB.AddDatapath(sw)
	rbB := NewRouter(ctlB, Member{ID: "B"}, Options{})
	if err := rbB.SetMembers([]Member{{ID: "B"}}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "orphan entries swept", func() bool { return sw.Table.Len() == 0 })
	if got := rbB.Counters.Get("cluster_takeover_swept"); got != 2 {
		t.Errorf("cluster_takeover_swept = %d, want 2", got)
	}
}

// TestForwardFallback: an unreachable owner must not blackhole flows — the
// event is decided locally and the violation counted.
func TestForwardFallback(t *testing.T) {
	ctlA := testController(t, "A", false, nil)
	ra := NewRouter(ctlA, Member{ID: "A"}, Options{
		Dial: func(m Member) (Link, error) { return failLink{}, nil },
	})
	if err := ra.SetMembers([]Member{{ID: "A"}, {ID: "B"}}); err != nil {
		t.Fatal(err)
	}
	f := fiveOwnedBy(t, ra, false)
	ra.HandleEvent(testPacketIn(f))
	if got := ra.Counters.Get("cluster_forward_fallbacks"); got != 1 {
		t.Errorf("cluster_forward_fallbacks = %d, want 1", got)
	}
	if got := ctlA.Counters.Get("flows_allowed"); got != 1 {
		t.Errorf("fallback did not decide locally: flows_allowed = %d", got)
	}
}

type failLink struct{}

func (failLink) ForwardEvent(openflow.PacketIn) error { return fmt.Errorf("down") }
func (failLink) PushSnapshot(*Snapshot) error         { return fmt.Errorf("down") }
func (failLink) Close() error                         { return nil }

// nopLink swallows everything: for tests exercising only the ownership
// function, where peers need not exist.
type nopLink struct{}

func (nopLink) ForwardEvent(openflow.PacketIn) error { return nil }
func (nopLink) PushSnapshot(*Snapshot) error         { return nil }
func (nopLink) Close() error                         { return nil }
