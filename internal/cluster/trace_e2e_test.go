package cluster

// Tentpole acceptance for the flight-recorder PR: one decision, traced end
// to end across a real two-replica cluster. Replica A receives the
// packet-in for a flow replica B owns and forwards it over a real TCP
// inter-controller link; B runs the full production query plane
// (query.Engine over query.Pool against real daemon.Server instances on
// loopback TCP), queries both endpoints, evaluates, and installs on a
// real switch. The forwarder's half of the trace and the owner's half
// must share one trace ID — the 'T' frame carries it across the link, the
// `trace:` query line carries it to the daemons — so a daemon RTT paid on
// B attributes to the decision A first saw.

import (
	"net"
	"testing"
	"time"

	"identxx/internal/core"
	"identxx/internal/flow"
	"identxx/internal/netaddr"
	"identxx/internal/openflow"
	"identxx/internal/pf"
	"identxx/internal/query"
	"identxx/internal/trace"
)

// tracedReplica is one full controller replica with its own flight
// recorder: pool, engine, controller, recorder.
type tracedReplica struct {
	pool *query.Pool
	eng  *query.Engine
	ctl  *core.Controller
	rec  *trace.Recorder
}

func startTracedReplica(t *testing.T, name string, resolver query.StaticResolver, sw *openflow.Switch) *tracedReplica {
	t.Helper()
	r := &tracedReplica{rec: trace.New(trace.Config{SampleEvery: 1})}
	r.pool = query.NewPool(query.PoolConfig{Resolver: resolver})
	t.Cleanup(func() { r.pool.Close() })
	r.eng = query.NewEngine(query.Config{Lower: r.pool})
	t.Cleanup(r.eng.Close)
	r.ctl = core.New(core.Config{
		Name: name,
		Policy: pf.MustCompile(name, `
block all
pass from any to any with eq(@src[name], skype) with eq(@dst[name], skype) keep state
`),
		Transport:        r.eng,
		Topology:         hopTopo{hops: []core.Hop{{Datapath: 1, OutPort: 2}}},
		InstallEntries:   true,
		AsyncQueries:     true,
		ResponseCacheTTL: time.Hour,
		Revocation:       true,
		Trace:            r.rec,
	})
	r.ctl.AddDatapath(sw)
	return r
}

// hasStage reports whether the trace recorded an event at the stage.
func hasStage(tr trace.Trace, s trace.Stage) bool {
	for _, e := range tr.Events {
		if e.Stage == s {
			return true
		}
	}
	return false
}

func TestTraceStitchedAcrossReplicas(t *testing.T) {
	src := startFailoverHost(t, "client", "10.15.0.1", "alice")
	dst := startFailoverHost(t, "server", "10.15.0.2", "bob")
	resolver := query.StaticResolver{src.ip: src.addr, dst.ip: dst.addr}

	sw := openflow.NewSwitch(1, "s1", 0)
	repA := startTracedReplica(t, "replica-a", resolver, sw)
	repB := startTracedReplica(t, "replica-b", resolver, sw)

	// Real TCP between the replicas: each router serves its
	// inter-controller listener, and the default dial (DialTCP on the
	// member's address) connects them — the same path production takes.
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lnA.Close() })
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lnB.Close() })
	ms := []Member{
		{ID: "A", Addr: lnA.Addr().String()},
		{ID: "B", Addr: lnB.Addr().String()},
	}
	ra := NewRouter(repA.ctl, ms[0], Options{Trace: repA.rec})
	rb := NewRouter(repB.ctl, ms[1], Options{Trace: repB.rec})
	go ra.Serve(lnA)
	go rb.Serve(lnB)
	if err := ra.SetMembers(ms); err != nil {
		t.Fatal(err)
	}
	if err := rb.SetMembers(ms); err != nil {
		t.Fatal(err)
	}

	// A real established flow owned by B, arriving at A.
	if err := dst.info.Listen(dst.proc.PID, netaddr.ProtoTCP, 5060); err != nil {
		t.Fatal(err)
	}
	var f flow.Five
	for p := netaddr.Port(42000); ; p++ {
		if p == 43000 {
			t.Fatal("no B-owned flow in 1000 ports")
		}
		cand := flow.Five{SrcIP: src.ip, DstIP: dst.ip, Proto: netaddr.ProtoTCP, SrcPort: p, DstPort: 5060}
		if rb.Owns(cand) {
			f = cand
			break
		}
	}
	if _, err := src.info.Connect(src.proc.PID, f); err != nil {
		t.Fatal(err)
	}

	ra.HandleEvent(testPacketIn(f))
	waitUntil(t, "flow admitted on the owner", func() bool {
		return repB.ctl.Counters.Get("flows_allowed") == 1
	})
	waitUntil(t, "entries installed", func() bool { return sw.Table.Len() == 2 })

	// The forwarder's half: one trace, verdict "forwarded", not stitched
	// (A minted the ID), carrying the StageForward span.
	waitUntil(t, "forwarder trace retained", func() bool { return len(repA.rec.Traces()) == 1 })
	fwd := repA.rec.Traces()[0]
	if fwd.ID == 0 || fwd.Stitched || fwd.Verdict != "forwarded" || !hasStage(fwd, trace.StageForward) {
		t.Fatalf("forwarder trace = %+v, want unstitched verdict=forwarded with a forward span", fwd)
	}

	// The owner's half: same ID, stitched, spanning query -> eval ->
	// install with verdict "pass".
	var own trace.Trace
	waitUntil(t, "owner trace retained", func() bool {
		for _, tr := range repB.rec.Find(fwd.ID) {
			own = tr
			return true
		}
		return false
	})
	if !own.Stitched {
		t.Error("owner trace not marked stitched")
	}
	if own.Verdict != "pass" {
		t.Errorf("owner verdict = %q, want pass", own.Verdict)
	}
	for _, s := range []trace.Stage{trace.StageQueryEnqueue, trace.StageQueryDone, trace.StageEval, trace.StageInstall} {
		if !hasStage(own, s) {
			t.Errorf("owner trace missing stage %v; events: %+v", s, own.Events)
		}
	}
	if got := repB.rec.Counters.Get("trace_stitched"); got != 1 {
		t.Errorf("trace_stitched = %d, want 1", got)
	}

	// Both halves describe the same flow.
	if fwd.FlowString() != own.FlowString() {
		t.Errorf("flow mismatch: forwarder %q vs owner %q", fwd.FlowString(), own.FlowString())
	}

	// And the trace ID reached the daemons over the query wire: the
	// source host's daemon counted at least one traced query.
	if got := srcDaemonTraced(t, src); got < 1 {
		t.Errorf("src daemon_queries_traced = %d, want >= 1 (trace line lost on the query wire)", got)
	}
}

// srcDaemonTraced digs the daemon counter out of the failover-host
// harness; separated so the e2e assertions above read linearly.
func srcDaemonTraced(t *testing.T, h *failoverHost) int64 {
	t.Helper()
	return h.d.Counters.Get("daemon_queries_traced")
}

// TestTraceLinkRedialNoCrossStitch: forwarded traced events before and
// after a link redial (connection death + transparent reconnect, the
// FIFO-resync case) must each stitch to their own decision — the trace
// retained for an ID must describe that ID's flow, never the other one's.
func TestTraceLinkRedialNoCrossStitch(t *testing.T) {
	rec := trace.New(trace.Config{SampleEvery: 1})
	ctl := core.New(core.Config{
		Name:             "B",
		Policy:           pf.MustCompile("B", passPolicy),
		Transport:        passTransport{},
		Topology:         hopTopo{},
		ResponseCacheTTL: time.Hour,
		Revocation:       true,
		Trace:            rec,
	})
	ctl.AddDatapath(&sinkDatapath{id: 1})
	rb := NewRouter(ctl, Member{ID: "B"}, Options{Trace: rec})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go rb.Serve(ln)

	l := DialTCP(ln.Addr().String())
	t.Cleanup(func() { l.Close() })

	ev1 := testPacketIn(testFive(33001))
	ev1.TraceID = 0x1111000011110001
	if err := l.ForwardEvent(ev1); err != nil {
		t.Fatalf("forward before redial: %v", err)
	}

	// Kill the connection out from under the link; the next forward heals
	// by redialing.
	l.sendMu.Lock()
	conn := l.conn
	l.sendMu.Unlock()
	conn.Close()

	ev2 := testPacketIn(testFive(33002))
	ev2.TraceID = 0x2222000022220002
	waitUntil(t, "link recovery", func() bool { return l.ForwardEvent(ev2) == nil })

	waitUntil(t, "both traces retained", func() bool {
		return len(rec.Find(ev1.TraceID)) == 1 && len(rec.Find(ev2.TraceID)) == 1
	})
	for _, want := range []struct {
		id   uint64
		port uint16
	}{{ev1.TraceID, 33001}, {ev2.TraceID, 33002}} {
		tr := rec.Find(want.id)[0]
		if !tr.Stitched {
			t.Errorf("trace %016x not stitched", want.id)
		}
		if tr.SrcPort != want.port {
			t.Errorf("trace %016x describes src port %d, want %d (stitched to the wrong decision)",
				want.id, tr.SrcPort, want.port)
		}
	}
}
