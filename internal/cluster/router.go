package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"

	"identxx/internal/core"
	"identxx/internal/flow"
	"identxx/internal/metrics"
	"identxx/internal/netaddr"
	"identxx/internal/openflow"
	"identxx/internal/pf"
	"identxx/internal/trace"
	"identxx/internal/wire"
)

// Router sits in front of one replica's core.Controller and enforces flow
// ownership: packet-ins for flows the ring assigns to this replica run the
// local decision pipeline unchanged (one ring lookup of added cost, zero
// added allocations); packet-ins for flows owned elsewhere are forwarded
// to the owner over its Link and acked after the owner's decision
// completes. Configuration writes go through the Router so they replicate
// (epoch-fenced snapshot push); membership changes rebuild the ring and
// sweep newly-owned orphan entries off the switches.
//
// A Router wraps exactly one Controller and is safe for concurrent use.
type Router struct {
	local *core.Controller
	self  Member
	dial  func(Member) (Link, error)
	// resolveDP maps a snapshot's datapath IDs onto this replica's own
	// switch connections (nil, the default, skips datapath replication —
	// each replica registers the switches it can reach itself).
	resolveDP func(id uint64) openflow.Datapath

	ring atomic.Pointer[ring]

	// mu serializes configuration and membership writers; readers never
	// take it (the packet path loads the ring pointer, nothing else).
	mu  sync.Mutex
	cfg Snapshot

	// tr is the flight recorder for the forwarder's half of a hand-off
	// (nil = tracing disabled). The owned path never touches it — the
	// wrapped controller records there — so the M14 budget is unaffected.
	tr *trace.Recorder

	// Counters is the router's observability surface (cluster_* namespace,
	// registered via telemetry.RegisterRouter).
	Counters *metrics.Counter
	hot      struct {
		owned     *atomic.Int64
		forwarded *atomic.Int64
		received  *atomic.Int64
		fallbacks *atomic.Int64
	}
}

// Options configures optional Router collaborators.
type Options struct {
	// Dial constructs the Link to a peer member. Defaults to DialTCP on
	// the member's Addr; in-process replica sets pass a closure returning
	// Loopback links.
	Dial func(Member) (Link, error)
	// ResolveDatapath maps replicated datapath IDs to local connections;
	// see Router.resolveDP.
	ResolveDatapath func(id uint64) openflow.Datapath
	// Trace enables the flight recorder on the forward path: a forwarded
	// packet-in mints (or inherits) a trace ID, carries it to the owner as
	// a FrameEventTraced, and the forwarder retains its own half with a
	// StageForward span covering the full hand-off round trip. Enabling it
	// here without also enabling tracing on the peer replicas loses the
	// owner halves but breaks nothing — the 'T' frame kind is understood
	// by every replica built with this package.
	Trace *trace.Recorder
}

// NewRouter wraps local. The ring starts with self as the only member —
// a single-replica deployment needs no SetMembers call and pays one ring
// lookup per event.
func NewRouter(local *core.Controller, self Member, opts Options) *Router {
	r := &Router{
		local:     local,
		self:      self,
		dial:      opts.Dial,
		resolveDP: opts.ResolveDatapath,
		tr:        opts.Trace,
		Counters:  metrics.NewCounter(),
	}
	if r.dial == nil {
		r.dial = func(m Member) (Link, error) {
			if m.Addr == "" {
				return nil, fmt.Errorf("cluster: member %s has no address", m.ID)
			}
			return DialTCP(m.Addr), nil
		}
	}
	r.hot.owned = r.Counters.Cell("cluster_events_owned")
	r.hot.forwarded = r.Counters.Cell("cluster_events_forwarded")
	r.hot.received = r.Counters.Cell("cluster_events_received")
	r.hot.fallbacks = r.Counters.Cell("cluster_forward_fallbacks")
	r.ring.Store(&ring{
		members: []Member{self},
		seeds:   []uint64{fnv64(self.ID)},
		links:   []Link{nil},
		self:    0,
	})
	return r
}

// Local returns the wrapped controller (operator surfaces and tests).
func (r *Router) Local() *core.Controller { return r.local }

// Self returns this replica's member identity.
func (r *Router) Self() Member { return r.self }

// HandleEvent is the ownership gate in front of the Figure 1 pipeline.
// The owned path must stay within the M14 allocation budget (≤ 2
// allocs/op end to end, i.e. the controller's own budget plus nothing):
// one ring load, one deterministic hash, one argmax.
func (r *Router) HandleEvent(ev openflow.PacketIn) {
	rg := r.ring.Load()
	o := rg.owner(ownerHash(ev.Tuple.Five()))
	if o == rg.self || o < 0 || rg.links[o] == nil {
		r.hot.owned.Add(1)
		r.local.HandleEvent(ev)
		return
	}
	r.hot.forwarded.Add(1)
	// Forwarder half of a stitched trace: mint (or inherit) the ID before
	// the hand-off so the owner's decision begins under the same ID, and
	// retain a local trace whose StageForward span covers the full round
	// trip — the owner's decision plus both wire legs.
	tb := r.tr.Begin(ev.TraceID)
	if tb != nil {
		f := ev.Tuple.Five()
		tb.SetFlow(uint8(f.Proto), uint32(f.SrcIP), uint32(f.DstIP), uint16(f.SrcPort), uint16(f.DstPort))
		ev.TraceID = tb.ID()
	}
	if err := rg.links[o].ForwardEvent(ev); err != nil {
		// Availability over strict ownership: an unreachable owner must
		// not blackhole the flow. Decide locally — installs are idempotent
		// and revocation-correct teardown of the duplicate state follows
		// from both replicas subscribing — and count the violation; a
		// nonzero fallback rate is the operator's cue that a link or
		// replica is down. The local decision keeps the minted trace ID,
		// so the fallback's trace stitches to this forward attempt.
		r.hot.fallbacks.Add(1)
		tb.Rec(trace.StageForward, trace.FlagFallback|trace.FlagErr, int64(o))
		tb.SetVerdict("forward-fallback")
		r.tr.Finish(tb)
		r.local.HandleEvent(ev)
		return
	}
	tb.Rec(trace.StageForward, 0, int64(o))
	tb.SetVerdict("forwarded")
	r.tr.Finish(tb)
}

// DeliverEvent runs a forwarded packet-in on the local controller. It is
// the receive half of Link.ForwardEvent — by the time it returns, the
// decision is complete, which is what makes the forwarding ack mean
// something.
func (r *Router) DeliverEvent(ev openflow.PacketIn) {
	r.hot.received.Add(1)
	r.local.HandleEvent(ev)
}

// HandlePacketIn implements openflow.Controller, so a Router can be
// installed directly as an in-process switch's controller.
func (r *Router) HandlePacketIn(sw *openflow.Switch, ev openflow.PacketIn) {
	r.HandleEvent(ev)
}

// HandleFlowRemoved implements openflow.Controller. Expiry notifications
// clean up per-flow decision state, which lives at the flow's owner; a
// non-owner receiving one (shared in-process switches, or a switch whose
// notification connection lands on the wrong replica) hands it to the
// owner when the link is in-process, and otherwise processes it locally —
// dropping state the replica does not hold is a no-op, and the owner's
// lease sweep remains the backstop.
func (r *Router) HandleFlowRemoved(sw *openflow.Switch, ev openflow.FlowRemoved) {
	rg := r.ring.Load()
	o := rg.owner(ownerHash(ev.Match.Tuple.Five()))
	if o != rg.self && o >= 0 {
		if lb, ok := rg.links[o].(Loopback); ok {
			lb.Peer.local.HandleFlowRemoved(sw, ev)
			return
		}
	}
	r.local.HandleFlowRemoved(sw, ev)
}

// Owner reports which member owns f under the current ring.
func (r *Router) Owner(f flow.Five) Member {
	rg := r.ring.Load()
	o := rg.owner(ownerHash(f))
	if o < 0 {
		return r.self
	}
	return rg.members[o]
}

// Owns reports whether this replica owns f under the current ring.
func (r *Router) Owns(f flow.Five) bool {
	return r.ring.Load().ownsSelf(ownerHash(f))
}

// SetMembers installs a new replica set and rebuilds the ring. Links to
// retained members are reused; links to departed members are closed after
// the swap. Every rebuild runs the takeover sweep: entries for flows the
// new ring assigns to this replica but that it holds no decision state
// for — flows whose owner departed, or whose ownership rebalanced here —
// are deleted from the local switches, so their next packet punts to this
// replica and re-decides under current endpoint state through the
// ordinary query plane (which re-queries and re-subscribes: failover =
// resubscribe). Serial-gap resync on the query plane covers updates the
// dead owner consumed that this one never saw.
func (r *Router) SetMembers(members []Member) error {
	r.mu.Lock()
	old := r.ring.Load()
	rg := &ring{
		members: append([]Member(nil), members...),
		seeds:   make([]uint64, len(members)),
		links:   make([]Link, len(members)),
		self:    -1,
	}
	var dialErr error
	for i, m := range members {
		rg.seeds[i] = fnv64(m.ID)
		if m.ID == r.self.ID {
			rg.self = i
			continue
		}
		if j := old.memberIndex(m); j >= 0 && old.links[j] != nil {
			rg.links[i] = old.links[j]
			continue
		}
		l, err := r.dial(m)
		if err != nil {
			// A member we cannot link to stays in the ring (ownership must
			// agree cluster-wide regardless of who can reach whom); its
			// flows fall back to local decisions until a later SetMembers.
			dialErr = err
			continue
		}
		rg.links[i] = l
	}
	r.ring.Store(rg)
	r.Counters.Add("cluster_ring_rebuilds", 1)
	for j, l := range old.links {
		if l == nil {
			continue
		}
		if i := indexOfMember(members, old.members[j]); i < 0 || rg.links[i] != l {
			l.Close()
		}
	}
	snap := r.snapshotLocked()
	links := retainedLinks(rg)
	r.mu.Unlock()

	swept := r.local.TakeoverSweep(func(f flow.Five) bool {
		return rg.ownsSelf(ownerHash(f))
	})
	if swept > 0 {
		r.Counters.Add("cluster_takeover_swept", int64(swept))
	}
	// Late joiners get the current config without waiting for the next
	// write: push the snapshot we hold at every live peer; fenced, so
	// peers holding the same or newer epoch reject it harmlessly.
	r.pushAll(snap, links)
	return dialErr
}

func (r *ring) memberIndex(m Member) int {
	return indexOfMember(r.members, m)
}

func indexOfMember(ms []Member, m Member) int {
	for i := range ms {
		if ms[i].ID == m.ID && ms[i].Addr == m.Addr {
			return i
		}
	}
	return -1
}

func retainedLinks(rg *ring) []Link {
	out := make([]Link, 0, len(rg.links))
	for _, l := range rg.links {
		if l != nil {
			out = append(out, l)
		}
	}
	return out
}

// RemoveMember drops one replica from the ring — the failover entry
// point when a peer is declared dead.
func (r *Router) RemoveMember(id string) error {
	cur := r.ring.Load().members
	next := make([]Member, 0, len(cur))
	for _, m := range cur {
		if m.ID != id {
			next = append(next, m)
		}
	}
	return r.SetMembers(next)
}

// SetPolicy compiles src and installs it as the cluster's policy: applied
// locally, then pushed to every peer under a bumped epoch. Compile errors
// reject the write before any state changes anywhere.
func (r *Router) SetPolicy(name, src string, defaultBlock bool) error {
	p, err := compilePolicy(name, src, defaultBlock)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.cfg.Epoch++
	r.cfg.Origin = r.self.ID
	r.cfg.PolicyName, r.cfg.PolicySrc, r.cfg.DefaultBlock = name, src, defaultBlock
	r.local.SetPolicy(p)
	snap := r.snapshotLocked()
	links := retainedLinks(r.ring.Load())
	r.mu.Unlock()
	r.pushAll(snap, links)
	return nil
}

// AnswerForHost merges answer-on-behalf pairs for ip cluster-wide.
func (r *Router) AnswerForHost(ip netaddr.IP, pairs ...wire.KV) {
	r.mu.Lock()
	if r.cfg.Answers == nil {
		r.cfg.Answers = make(map[netaddr.IP][]wire.KV)
	}
	r.cfg.Answers[ip] = append(r.cfg.Answers[ip], pairs...)
	r.cfg.Epoch++
	r.cfg.Origin = r.self.ID
	r.local.AnswerForHost(ip, pairs...)
	snap := r.snapshotLocked()
	links := retainedLinks(r.ring.Load())
	r.mu.Unlock()
	r.pushAll(snap, links)
}

// AddDatapath registers dp locally and records its ID in the replicated
// config, so peers with a resolver hook attach their own connection to
// the same switch.
func (r *Router) AddDatapath(dp openflow.Datapath) {
	r.mu.Lock()
	r.local.AddDatapath(dp)
	id := dp.DatapathID()
	known := false
	for _, x := range r.cfg.Datapaths {
		if x == id {
			known = true
			break
		}
	}
	if !known {
		r.cfg.Datapaths = append(r.cfg.Datapaths, id)
	}
	r.cfg.Epoch++
	r.cfg.Origin = r.self.ID
	snap := r.snapshotLocked()
	links := retainedLinks(r.ring.Load())
	r.mu.Unlock()
	r.pushAll(snap, links)
}

// snapshotLocked deep-copies the current config for a push; r.mu held.
func (r *Router) snapshotLocked() *Snapshot {
	s := r.cfg
	s.Datapaths = append([]uint64(nil), r.cfg.Datapaths...)
	s.Answers = make(map[netaddr.IP][]wire.KV, len(r.cfg.Answers))
	for ip, kvs := range r.cfg.Answers {
		s.Answers[ip] = append([]wire.KV(nil), kvs...)
	}
	return &s
}

// pushAll delivers snap to every link, best-effort: a peer that is down
// catches up from the join-time push of the next SetMembers, or from the
// next config write. Stale rejections are the fence working, not errors.
func (r *Router) pushAll(snap *Snapshot, links []Link) {
	for _, l := range links {
		switch err := l.PushSnapshot(snap); err {
		case nil:
			r.Counters.Add("cluster_snapshots_pushed", 1)
		case ErrStaleEpoch:
			r.Counters.Add("cluster_snapshots_fenced", 1)
		default:
			_ = err
			r.Counters.Add("cluster_push_errors", 1)
		}
	}
}

// ApplySnapshot installs a peer's config snapshot if it supersedes the
// applied one, rejecting stale epochs with ErrStaleEpoch — the receive
// half of the epoch fence. The policy is recompiled from source only when
// it actually changed, so datapath/answer-only pushes do not flush
// verdict caches.
func (r *Router) ApplySnapshot(s *Snapshot) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !s.newerThan(r.cfg.Epoch, r.cfg.Origin) {
		r.Counters.Add("cluster_snapshots_stale", 1)
		return ErrStaleEpoch
	}
	policyChanged := s.PolicySrc != r.cfg.PolicySrc ||
		s.PolicyName != r.cfg.PolicyName ||
		s.DefaultBlock != r.cfg.DefaultBlock
	if policyChanged {
		p, err := compilePolicy(s.PolicyName, s.PolicySrc, s.DefaultBlock)
		if err != nil {
			// Reject without advancing the epoch: a snapshot this replica
			// cannot compile must not fence out a later good one.
			r.Counters.Add("cluster_snapshot_errors", 1)
			return err
		}
		r.local.SetPolicy(p)
	}
	r.local.ReplaceAnswers(s.Answers)
	if r.resolveDP != nil {
		for _, id := range s.Datapaths {
			if dp := r.resolveDP(id); dp != nil {
				r.local.AddDatapath(dp)
			}
		}
	}
	r.cfg = *s
	r.Counters.Add("cluster_snapshots_applied", 1)
	return nil
}

// Epoch returns the applied config epoch and its origin replica.
func (r *Router) Epoch() (uint64, string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cfg.Epoch, r.cfg.Origin
}

func compilePolicy(name, src string, defaultBlock bool) (*pf.Policy, error) {
	f, err := pf.Parse(name, src)
	if err != nil {
		return nil, err
	}
	p, err := pf.Compile(f)
	if err != nil {
		return nil, err
	}
	if defaultBlock {
		p.Default = pf.Block
	}
	return p, nil
}

// ReplicaStat is one ring member's share of the flow space, for the
// identctl admin `ring` drill-down.
type ReplicaStat struct {
	Member Member
	Self   bool
	Linked bool
	Share  float64
}

// RingStats samples the ownership function over a deterministic synthetic
// flow population and reports each member's share. Shares are estimates
// of the hash-space split (HRW gives 1/N ± sampling noise), not live flow
// counts.
func (r *Router) RingStats(samples int) []ReplicaStat {
	if samples <= 0 {
		samples = 4096
	}
	rg := r.ring.Load()
	stats := make([]ReplicaStat, len(rg.members))
	counts := make([]int, len(rg.members))
	for i, m := range rg.members {
		stats[i] = ReplicaStat{
			Member: m,
			Self:   i == rg.self,
			Linked: i == rg.self || rg.links[i] != nil,
		}
	}
	if len(rg.members) == 0 {
		return stats
	}
	for i := 0; i < samples; i++ {
		// An arbitrary-but-fixed walk of the flow space; mix64 decorrelates
		// it from the member seeds.
		h := mix64(uint64(i)*0x9e3779b97f4a7c15 + 1)
		if o := rg.owner(h); o >= 0 {
			counts[o]++
		}
	}
	for i := range stats {
		stats[i].Share = float64(counts[i]) / float64(samples)
	}
	return stats
}

// Members returns the current ring membership.
func (r *Router) Members() []Member {
	return append([]Member(nil), r.ring.Load().members...)
}
