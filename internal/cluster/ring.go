// Package cluster splits flow ownership across N controller replicas by
// consistent-hashing the 5-tuple: a rendezvous (highest-random-weight)
// ring maps every flow to exactly one owning replica, a Router in front of
// core.Controller.HandleEvent forwards non-owned packet-ins to the owner
// over a pipelined wire.Frame inter-controller link, and the read-mostly
// configuration (policy source, answer-on-behalf data, datapath set)
// replicates via epoch-fenced snapshot pushes so a SetPolicy on any
// replica converges everywhere with stale-epoch writes rejected.
//
// The design lifts the controller's existing per-shard isolation across
// process boundaries (ROADMAP: "lifting shards across processes is a
// refactor, not a rewrite"): per-flow state — response-cache entry,
// pending decision, revocation-index registration, daemon subscription —
// lives only at the flow's owner, so replicas share no per-flow state and
// need no cross-replica locks. Replica loss is handled by rebuilding the
// ring and sweeping newly-owned orphan entries from the switches
// (core.Controller.TakeoverSweep); the next packet of each swept flow
// punts to the new owner, which re-queries and re-subscribes through the
// ordinary query plane — failover is resubscribe, not restart.
package cluster

import "identxx/internal/flow"

// Member is one controller replica in the ring: a stable identity plus
// the address of its inter-controller link ("" for in-process peers,
// whose links are constructed directly).
type Member struct {
	ID   string
	Addr string
}

// ring is one immutable ownership epoch: members, their precomputed
// rendezvous seeds, and the links to reach them (nil at self and for
// members with no link). Routers swap whole rings atomically; nothing in
// a published ring is ever mutated.
type ring struct {
	members []Member
	seeds   []uint64
	links   []Link
	self    int // index of the local replica in members; -1 when absent
}

// fnv64 is FNV-1a, used to derive a member's rendezvous seed from its ID —
// stable across processes and restarts, as every input to the ownership
// function must be: all replicas have to compute the same owner for the
// same flow from the member list alone.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the splitmix64 finalizer: a cheap full-avalanche mix that turns
// flow-hash ^ member-seed into an independent uniform score per member.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// owner returns the index of the member with the highest rendezvous score
// for flow-hash h, or -1 for an empty ring. Rendezvous hashing gives the
// two properties the cluster needs with no token tables to replicate:
// every replica computes the same owner from the member list alone, and a
// membership change moves only the flows whose argmax involved the changed
// member (1/N of the space on average).
func (r *ring) owner(h uint64) int {
	if len(r.seeds) <= 1 {
		return len(r.seeds) - 1
	}
	best, bestScore := 0, mix64(h^r.seeds[0])
	for i := 1; i < len(r.seeds); i++ {
		if s := mix64(h ^ r.seeds[i]); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// ownsSelf reports whether the local replica owns flow-hash h.
func (r *ring) ownsSelf(h uint64) bool {
	return r.self >= 0 && r.owner(h) == r.self
}

// canonFive maps both directions of a flow onto one canonical orientation
// before hashing, so a keep-state pair — forward and reverse entries,
// installed together and revoked together — has a single owner. Without
// this, reply packets of a flow admitted by replica A would punt to
// replica B, which has no cache entry, no registration, and no
// subscription for them.
func canonFive(f flow.Five) flow.Five {
	if f.DstIP < f.SrcIP || (f.DstIP == f.SrcIP && f.DstPort < f.SrcPort) {
		return f.Reverse()
	}
	return f
}

// ownerHash is the hash the ring is keyed on. It deliberately does NOT use
// flow.Five.Hash(): that hash is seeded per process (maphash.MakeSeed), so
// two replicas would disagree about every flow's owner and forward events
// in circles. Ownership instead hashes the canonical orientation's fields
// through splitmix64 — deterministic across processes, zero-allocation,
// and uniform enough for HRW's argmax.
func ownerHash(f flow.Five) uint64 {
	f = canonFive(f)
	h := mix64(uint64(f.SrcIP)<<32 | uint64(f.DstIP))
	h ^= uint64(f.SrcPort)<<24 | uint64(f.DstPort)<<8 | uint64(f.Proto)
	return mix64(h)
}
