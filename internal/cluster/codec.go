package cluster

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"identxx/internal/netaddr"
	"identxx/internal/openflow"
	"identxx/internal/wire"
)

// Ack status codes carried in a FrameAck payload's first byte.
const (
	ackOK    byte = 0
	ackStale byte = 1 // snapshot rejected: epoch not newer than applied
	ackError byte = 2 // decode failure or handler error
)

// eventHeaderLen is the fixed prefix of a FrameEvent payload: the
// packet-in envelope (switch id, buffer id, in-port, reason) plus the full
// OpenFlow 10-tuple. The raw frame bytes follow to the end of the payload.
const eventHeaderLen = 8 + 4 + 2 + 1 + 2 + 8 + 8 + 2 + 2 + 4 + 4 + 1 + 2 + 2

// encodeEvent serializes a forwarded packet-in. The tuple rides alongside
// the frame bytes even though it is derivable from them: the receiving
// replica must not re-parse (the sender already did, and header-only
// fast paths key on the tuple as given).
func encodeEvent(dst []byte, ev openflow.PacketIn) []byte {
	var h [eventHeaderLen]byte
	binary.BigEndian.PutUint64(h[0:8], ev.SwitchID)
	binary.BigEndian.PutUint32(h[8:12], ev.BufferID)
	binary.BigEndian.PutUint16(h[12:14], ev.InPort)
	h[14] = byte(ev.Reason)
	t := ev.Tuple
	binary.BigEndian.PutUint16(h[15:17], t.InPort)
	binary.BigEndian.PutUint64(h[17:25], uint64(t.MACSrc))
	binary.BigEndian.PutUint64(h[25:33], uint64(t.MACDst))
	binary.BigEndian.PutUint16(h[33:35], t.EthType)
	binary.BigEndian.PutUint16(h[35:37], t.VLAN)
	binary.BigEndian.PutUint32(h[37:41], uint32(t.SrcIP))
	binary.BigEndian.PutUint32(h[41:45], uint32(t.DstIP))
	h[45] = byte(t.Proto)
	binary.BigEndian.PutUint16(h[46:48], uint16(t.SrcPort))
	binary.BigEndian.PutUint16(h[48:50], uint16(t.DstPort))
	dst = append(dst, h[:]...)
	return append(dst, ev.Frame...)
}

// decodeEvent is encodeEvent's inverse. The frame slice aliases p's tail;
// callers own p and must not recycle it while the event is live.
func decodeEvent(p []byte) (openflow.PacketIn, error) {
	if len(p) < eventHeaderLen {
		return openflow.PacketIn{}, fmt.Errorf("cluster: event payload %d bytes, want >= %d", len(p), eventHeaderLen)
	}
	ev := openflow.PacketIn{
		SwitchID: binary.BigEndian.Uint64(p[0:8]),
		BufferID: binary.BigEndian.Uint32(p[8:12]),
		InPort:   binary.BigEndian.Uint16(p[12:14]),
		Reason:   openflow.PacketInReason(p[14]),
	}
	ev.Tuple.InPort = binary.BigEndian.Uint16(p[15:17])
	ev.Tuple.MACSrc = netaddr.MAC(binary.BigEndian.Uint64(p[17:25]))
	ev.Tuple.MACDst = netaddr.MAC(binary.BigEndian.Uint64(p[25:33]))
	ev.Tuple.EthType = binary.BigEndian.Uint16(p[33:35])
	ev.Tuple.VLAN = binary.BigEndian.Uint16(p[35:37])
	ev.Tuple.SrcIP = netaddr.IP(binary.BigEndian.Uint32(p[37:41]))
	ev.Tuple.DstIP = netaddr.IP(binary.BigEndian.Uint32(p[41:45]))
	ev.Tuple.Proto = netaddr.Proto(p[45])
	ev.Tuple.SrcPort = netaddr.Port(binary.BigEndian.Uint16(p[46:48]))
	ev.Tuple.DstPort = netaddr.Port(binary.BigEndian.Uint16(p[48:50]))
	if len(p) > eventHeaderLen {
		ev.Frame = p[eventHeaderLen:]
	}
	return ev, nil
}

// Snapshot is the replicated read-mostly configuration: everything a
// replica needs to decide flows identically to its peers. Policy travels
// as source text and is recompiled at the receiver — compiled programs
// hold function values and caches that cannot cross a wire — and
// datapaths travel as IDs resolved through the receiver's local resolver
// hook (switch connections are per-replica; an openflow.Datapath is not
// serializable).
//
// (Epoch, Origin) totally orders snapshots: Epoch is a Lamport-style
// counter (every local config write sets it to last-seen+1) and Origin
// breaks same-epoch ties between concurrent writers on different
// replicas, so all replicas converge on the same winner without any
// coordination round.
type Snapshot struct {
	Epoch        uint64
	Origin       string
	PolicyName   string
	PolicySrc    string
	DefaultBlock bool
	Datapaths    []uint64
	Answers      map[netaddr.IP][]wire.KV
}

// newerThan reports whether s supersedes the applied (epoch, origin).
func (s *Snapshot) newerThan(epoch uint64, origin string) bool {
	if s.Epoch != epoch {
		return s.Epoch > epoch
	}
	return s.Origin > origin
}

// encodeSnapshot renders the line-oriented form: headers, then a bare
// "policy:" marker, then the raw policy source to the end of the payload.
// Answer keys and values are tab-separated (values may contain spaces;
// the wire's own text format forbids tabs in pair values).
func encodeSnapshot(s *Snapshot) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "epoch:%d\n", s.Epoch)
	fmt.Fprintf(&b, "origin:%s\n", s.Origin)
	fmt.Fprintf(&b, "policyname:%s\n", s.PolicyName)
	if s.DefaultBlock {
		b.WriteString("default:block\n")
	} else {
		b.WriteString("default:pass\n")
	}
	for _, id := range s.Datapaths {
		fmt.Fprintf(&b, "datapath:%d\n", id)
	}
	// Deterministic order so identical configs encode identically (useful
	// for tests and for comparing pushes in packet captures).
	ips := make([]netaddr.IP, 0, len(s.Answers))
	for ip := range s.Answers {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	for _, ip := range ips {
		for _, kv := range s.Answers[ip] {
			fmt.Fprintf(&b, "answer:%s\t%s\t%s\n", ip, kv.Key, kv.Value)
		}
	}
	b.WriteString("policy:\n")
	b.WriteString(s.PolicySrc)
	return []byte(b.String())
}

// decodeSnapshot is encodeSnapshot's inverse.
func decodeSnapshot(p []byte) (*Snapshot, error) {
	s := &Snapshot{Answers: make(map[netaddr.IP][]wire.KV)}
	rest := string(p)
	for {
		line, tail, ok := strings.Cut(rest, "\n")
		if !ok {
			return nil, fmt.Errorf("cluster: snapshot truncated before policy marker")
		}
		rest = tail
		if line == "policy:" {
			s.PolicySrc = rest
			return s, nil
		}
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("cluster: malformed snapshot line %q", line)
		}
		switch key {
		case "epoch":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("cluster: bad epoch %q", val)
			}
			s.Epoch = n
		case "origin":
			s.Origin = val
		case "policyname":
			s.PolicyName = val
		case "default":
			s.DefaultBlock = val == "block"
		case "datapath":
			id, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("cluster: bad datapath id %q", val)
			}
			s.Datapaths = append(s.Datapaths, id)
		case "answer":
			fields := strings.SplitN(val, "\t", 3)
			if len(fields) != 3 {
				return nil, fmt.Errorf("cluster: malformed answer line %q", line)
			}
			ip, err := netaddr.ParseIP(fields[0])
			if err != nil {
				return nil, fmt.Errorf("cluster: bad answer host %q", fields[0])
			}
			s.Answers[ip] = append(s.Answers[ip], wire.KV{Key: fields[1], Value: fields[2]})
		default:
			// Unknown headers are skipped, not rejected: a newer replica
			// pushing to an older one during a rolling upgrade must not
			// wedge the cluster.
		}
	}
}
