package pf

import (
	"sync"
	"sync/atomic"

	"identxx/internal/flow"
	"identxx/internal/wire"
)

// The controller builds short-lived response views on the decision fast
// path: answer-on-behalf responses for daemon-less hosts (§3.4, §4) exist
// only to be borrowed by Evaluate as Input.Src/Input.Dst and are dead the
// moment the verdict lands. Allocating one per decision is pure garbage at
// line rate, so they are pooled here, next to the evaluator that defines
// the borrow contract (see Input).
//
// Ownership rules:
//
//   - AcquireResponse transfers ownership to the caller.
//   - Evaluate only ever borrows; acquiring caller stays the owner.
//   - ReleaseResponse ends ownership. The caller must not release a
//     response something else may still hold — in particular, a response
//     stored into a cache is owned by the cache from that point on, and
//     the cache releases it when the entry leaves on any eviction path
//     (the controller's cache refcounts borrows so a concurrent reader
//     can outlive the entry safely).
var respPool = sync.Pool{New: func() any { return new(wire.Response) }}

// respAcquired/respReleased count pool traffic so tests can assert the
// acquire/release ledger balances — a cached view dropped without a
// matching release is a pool leak these counters make visible.
var respAcquired, respReleased atomic.Int64

// AcquireResponse returns an empty response for flow f, recycled (with its
// section/pair capacity intact) when one is available. The caller owns it
// until it calls ReleaseResponse or hands ownership elsewhere.
func AcquireResponse(f flow.Five) *wire.Response {
	r := respPool.Get().(*wire.Response)
	r.Reset(f)
	respAcquired.Add(1)
	return r
}

// ReleaseResponse recycles a response obtained from AcquireResponse. It is
// the caller's assertion that nothing else holds the pointer; releasing a
// cached or shared response is a use-after-free spelled politely. Releasing
// nil is a no-op so callers can release unconditionally.
func ReleaseResponse(r *wire.Response) {
	if r == nil {
		return
	}
	respReleased.Add(1)
	respPool.Put(r)
}

// ResponseViewStats reports the lifetime acquire/release counts. In a
// quiescent process the difference is the number of views currently owned
// outside the pool (borrowed or cached); a difference that grows without
// bound is a leak.
func ResponseViewStats() (acquired, released int64) {
	return respAcquired.Load(), respReleased.Load()
}
