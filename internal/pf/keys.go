package pf

// ReferencedKeys returns the @src/@dst dictionary keys the policy's rules
// can read, sorted and deduplicated. The ident++ controller sends them as
// the query's key hints (§3.2: "a list of keys that the controller is
// interested in") when it has no per-flow analysis to narrow them further.
//
// The set is derived from the compiled decision program's static key
// analysis — the same analysis that powers per-flow hints and the
// header-only pre-pass — so there is exactly one definition of "key the
// policy reads". That analysis sees through statically-known embedded
// `allowed` rules (literal, macro, and policy-dict arguments), whose keys
// the old AST walk missed; keys of dynamically-supplied embedded rules
// (allowed(@src[requirements])) remain unknowable until the response
// arrives, and hints are advisory — daemons may answer with more.
func (p *Policy) ReferencedKeys() []string {
	return p.Program().ReferencedKeys()
}
