package pf

import "sort"

// ReferencedKeys returns the @src/@dst dictionary keys the policy's rules
// mention, sorted and deduplicated. The ident++ controller sends them as
// the query's key hints (§3.2: "a list of keys that the controller is
// interested in"). Keys used only inside embedded `allowed` rules are not
// statically known and are not included; hints are advisory and daemons
// may answer with more.
func (p *Policy) ReferencedKeys() []string {
	seen := make(map[string]bool)
	var walk func(rules []*Rule)
	walk = func(rules []*Rule) {
		for _, r := range rules {
			for _, w := range r.Withs {
				for _, a := range w.Args {
					if (a.Kind == ArgDict || a.Kind == ArgDictConcat) &&
						(a.Text == "src" || a.Text == "dst") {
						seen[a.Key] = true
					}
				}
			}
		}
	}
	walk(p.Rules)
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
