package pf

import (
	"strings"
	"testing"

	"identxx/internal/netaddr"
)

func TestLexBasics(t *testing.T) {
	toks, err := lexAll("t", `pass from <lan> to !<server> with eq(@src[userID], system) # comment`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]tokKind, len(toks))
	for i, tok := range toks {
		kinds[i] = tok.kind
	}
	want := []tokKind{
		tokWord, tokWord, tokTable, tokWord, tokBang, tokTable,
		tokWord, tokWord, tokLParen, tokAt, tokLBracket, tokWord, tokRBracket,
		tokComma, tokWord, tokRParen, tokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("token count = %d, want %d (%v)", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexContinuationAndComments(t *testing.T) {
	src := "pass from any \\\n  to any # trailing\n# full line\nblock all"
	toks, err := lexAll("t", src)
	if err != nil {
		t.Fatal(err)
	}
	var words []string
	for _, tok := range toks {
		if tok.kind == tokWord {
			words = append(words, tok.text)
		}
	}
	if strings.Join(words, " ") != "pass from any to any block all" {
		t.Errorf("words = %v", words)
	}
	// Line numbers advance across continuations.
	last := toks[len(toks)-2]
	if last.line != 4 {
		t.Errorf("last token line = %d, want 4", last.line)
	}
}

func TestLexStarAt(t *testing.T) {
	toks, err := lexAll("t", `eq(*@src[userID], alice)`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tok := range toks {
		if tok.kind == tokStarAt && tok.text == "src" {
			found = true
		}
	}
	if !found {
		t.Error("did not lex *@src")
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{
		`pass from <unterminated`,
		`"unterminated string`,
		"stray \\ backslash",
		"pass * from any",
		"pass ~ all",
	} {
		if _, err := lexAll("t", bad); err == nil {
			t.Errorf("lexAll(%q) should fail", bad)
		}
	}
}

func TestParsePaperFigure2(t *testing.T) {
	// Verbatim (modulo layout) from Figure 2 of the paper.
	src := `
table <server> { 192.168.1.1 }
table <lan> { 192.168.0.0/24 }
table <int_hosts> { <lan> <server> }
allowed = "{ http ssh }" # a macro of apps

# default deny
block all

# allow connections outbound
pass from <int_hosts> \
     to !<int_hosts> \
     keep state

# allow all traffic from approved apps
pass from <int_hosts> \
     to <int_hosts> \
     with member(@src[name], $allowed) \
     keep state

table <skype_update> { 123.123.123.0/24 }
# skype to skype allowed
pass all \
     with eq(@src[name], skype) \
     with eq(@dst[name], skype)
# skype update feature
pass from any \
     to <skype_update> port 80 \
     with eq(@src[name], skype) \
     keep state

# no really old versions of skype
block all \
     with eq(@src[name], skype) \
     with lt(@src[version], 200)
# no skype to server
block from any \
     to <server> \
     with eq(@src[name], skype)
`
	f, err := Parse("fig2", src)
	if err != nil {
		t.Fatal(err)
	}
	rules := f.Rules()
	if len(rules) != 7 {
		t.Fatalf("rule count = %d, want 7", len(rules))
	}
	// block all
	if rules[0].Action != Block || rules[0].From.Kind != AddrAny || rules[0].To.Kind != AddrAny {
		t.Errorf("rule 0 wrong: %s", rules[0])
	}
	// outbound keep state with negated to.
	if !rules[1].KeepState || !rules[1].To.Neg || rules[1].To.Table != "int_hosts" {
		t.Errorf("rule 1 wrong: %s", rules[1])
	}
	// member with macro arg.
	if len(rules[2].Withs) != 1 || rules[2].Withs[0].Name != "member" ||
		rules[2].Withs[0].Args[1].Kind != ArgMacro || rules[2].Withs[0].Args[1].Text != "allowed" {
		t.Errorf("rule 2 wrong: %s", rules[2])
	}
	// skype update: to-port 80.
	if rules[4].ToPort.IsAny() || !rules[4].ToPort.Matches(80) || rules[4].ToPort.Matches(81) {
		t.Errorf("rule 4 port wrong: %s", rules[4])
	}
	// version check parses as lt with dict + literal args.
	w := rules[5].Withs[1]
	if w.Name != "lt" || w.Args[0].Kind != ArgDict || w.Args[0].Text != "src" || w.Args[0].Key != "version" || w.Args[1].Text != "200" {
		t.Errorf("rule 5 with wrong: %s", w)
	}
}

func TestParsePaperFigure5(t *testing.T) {
	src := `
table <research-machines> { 10.1.0.0/16 }
table <production-machines> { 10.2.0.0/16 }
dict <pubkeys> { \
  research : sk3ajfxfa932 \
  admin : a923jxa12kz \
}
# Allow only researchers to run applications
pass from <research-machines> \
     with member(@src[groupID], research) \
     to !<production-machines> \
     with member(@dst[groupID], research) \
     with allowed(@dst[requirements]) \
     with verify(@dst[req-sig], \
                 @pubkeys[research], \
                 @dst[exe-hash], \
                 @dst[app-name], \
                 @dst[requirements])
`
	f, err := Parse("fig5", src)
	if err != nil {
		t.Fatal(err)
	}
	var dict *DictDef
	for _, s := range f.Stmts {
		if d, ok := s.(*DictDef); ok {
			dict = d
		}
	}
	if dict == nil || dict.Name != "pubkeys" || dict.Pairs["research"] != "sk3ajfxfa932" {
		t.Fatalf("dict parse wrong: %+v", dict)
	}
	rules := f.Rules()
	if len(rules) != 1 {
		t.Fatalf("rule count = %d", len(rules))
	}
	r := rules[0]
	if len(r.Withs) != 4 {
		t.Fatalf("withs = %d, want 4", len(r.Withs))
	}
	v := r.Withs[3]
	if v.Name != "verify" || len(v.Args) != 5 {
		t.Fatalf("verify call wrong: %s", v)
	}
	if v.Args[1].Kind != ArgDict || v.Args[1].Text != "pubkeys" || v.Args[1].Key != "research" {
		t.Errorf("pubkeys arg wrong: %s", v.Args[1])
	}
}

func TestParseEmbeddedRequirements(t *testing.T) {
	// Figure 3's requirements value: two rules on one logical line —
	// statements are keyword-delimited.
	src := `pass from any port http with eq(@src[name], skype) pass from any port https with eq(@src[name], skype)`
	rules, err := ParseRules("fig3-req", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("rule count = %d, want 2", len(rules))
	}
	if !rules[0].FromPort.Matches(80) || !rules[1].FromPort.Matches(443) {
		t.Errorf("ports wrong: %s / %s", rules[0], rules[1])
	}
}

func TestParseRulesRejectsDefinitions(t *testing.T) {
	if _, err := ParseRules("evil", `table <x> { 10.0.0.1 } pass all`); err == nil {
		t.Error("embedded table definition should be rejected")
	}
	if _, err := ParseRules("evil", `pk = "abc" pass all`); err == nil {
		t.Error("embedded macro definition should be rejected")
	}
}

func TestParseQuick(t *testing.T) {
	f, err := Parse("t", `pass quick from any to any block all`)
	if err != nil {
		t.Fatal(err)
	}
	rules := f.Rules()
	if len(rules) != 2 || !rules[0].Quick || rules[1].Quick {
		t.Fatalf("quick parse wrong: %v", f)
	}
}

func TestParsePortList(t *testing.T) {
	f, err := Parse("t", `pass from any to any port { 80 443 8000-8080 }`)
	if err != nil {
		t.Fatal(err)
	}
	pe := f.Rules()[0].ToPort
	for _, p := range []netaddr.Port{80, 443, 8000, 8080} {
		if !pe.Matches(p) {
			t.Errorf("port %d should match", p)
		}
	}
	for _, p := range []netaddr.Port{81, 7999, 8081} {
		if pe.Matches(p) {
			t.Errorf("port %d should not match", p)
		}
	}
}

func TestParseAddressList(t *testing.T) {
	f, err := Parse("t", `pass from { 10.0.0.1 192.168.0.0/16 } to any`)
	if err != nil {
		t.Fatal(err)
	}
	from := f.Rules()[0].From
	if from.Kind != AddrList || len(from.List) != 2 {
		t.Fatalf("list parse wrong: %s", from)
	}
}

func TestParseServiceNamePort(t *testing.T) {
	f, err := Parse("t", `pass from any port http to any port https`)
	if err != nil {
		t.Fatal(err)
	}
	r := f.Rules()[0]
	if !r.FromPort.Matches(80) || !r.ToPort.Matches(443) {
		t.Error("service-name ports wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`pass from`,                     // missing address
		`pass from any to`,              // missing address
		`pass all from any`,             // all + from
		`pass from any from any`,        // duplicate from
		`pass from any to any with eq(`, // unterminated call
		`pass with eq(@src[], x)`,       // empty key
		`pass with eq(@src[userID, x)`,  // missing ]
		`table <t>`,                     // missing body
		`table <t> { bogus-addr }`,      // bad address
		`table <t> { 10.0.0.1`,          // unterminated
		`dict <d> { k }`,                // missing colon
		`dict <d> { k : }`,              // missing value
		`pass from any to any keep`,     // keep without state
		`frobnicate all`,                // unknown statement
		`pass with eq(<t>, x)`,          // table as function arg
	}
	for _, src := range cases {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseErrorsIncludePosition(t *testing.T) {
	_, err := Parse("myfile", "pass from any to any\nblock from bogus to any\n")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "myfile:2") {
		t.Errorf("error lacks position: %v", err)
	}
}

func TestRuleStringRoundTrip(t *testing.T) {
	srcs := []string{
		`block all`,
		`pass quick from <lan> to !<server> port 80 with eq(@src[name], skype) keep state`,
		`pass from any port http to { 10.0.0.1 10.0.0.2 } with member(@src[groupID], $grps)`,
		`block all with lt(@src[version], 200)`,
		`pass from 10.0.0.0/8 to any with verify(@src[req-sig], @pubkeys[Secur], @src[exe-hash])`,
	}
	defs := "table <lan> { 10.0.0.0/8 }\ntable <server> { 10.0.0.1 }\n"
	for _, src := range srcs {
		f, err := Parse("t", defs+src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := f.Rules()[0].String()
		f2, err := Parse("t2", defs+printed)
		if err != nil {
			t.Fatalf("reparse %q (printed from %q): %v", printed, src, err)
		}
		if got := f2.Rules()[0].String(); got != printed {
			t.Errorf("unstable round trip:\n  src     %q\n  printed %q\n  again   %q", src, printed, got)
		}
	}
}

func TestFileString(t *testing.T) {
	src := "table <lan> { 10.0.0.0/8 }\nblock all\n"
	f, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	s := f.String()
	if !strings.Contains(s, "table <lan>") || !strings.Contains(s, "block all") {
		t.Errorf("File.String = %q", s)
	}
}
