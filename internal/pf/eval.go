package pf

import (
	"fmt"
	"sync"
	"sync/atomic"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
	"identxx/internal/wire"
)

// maxAllowedDepth bounds recursion through the `allowed` function: a
// malicious `requirements` value whose rules call allowed() on themselves
// must not hang the controller.
const maxAllowedDepth = 4

// Policy is a compiled PF+=2 ruleset: resolved tables, dictionaries,
// macros, the ordered rule list, and the function registry. A Policy is
// safe for concurrent Evaluate calls. The definition maps (Tables,
// Dicts, Macros) must not be mutated after Compile — the lowered
// decision program (program.go) pre-resolves against them; Default and
// Register stay live.
//
// Because controller configuration is the concatenation of several files
// (§3.4), Compile merges definitions across files: tables union their
// elements, dict entries and macros are overridden by later files.
type Policy struct {
	Tables map[string]*netaddr.IPSet
	Dicts  map[string]map[string]string
	Macros map[string]string
	Rules  []*Rule

	// Default is the verdict when no rule matches. Vanilla PF defaults to
	// pass; the paper's configurations always open with "block all".
	Default Action

	funcs *FuncRegistry

	// prog is the lowered decision program (compile.go); set by Compile,
	// lazily by Program() for hand-assembled policies.
	prog atomic.Pointer[Program]

	// ruleCache memoizes parse+lower results for `allowed` arguments,
	// which repeat across flows from the same application. The memo is
	// bounded (maxRuleCacheEntries, compile.go): its keys arrive from the
	// network, so without a cap a churning `requirements` value would
	// grow it forever.
	ruleCache          sync.Map // string -> *allowedEntry
	ruleCacheN         atomic.Int64
	ruleCacheEvictions atomic.Int64

	// ruleCacheRing/ruleCacheHand drive CLOCK eviction over the memo
	// (compile.go): the ring holds insertion-ordered keys, the hand sweeps
	// it granting second chances to entries used since the last sweep, so
	// a hot `allowed` argument survives a churning cold one.
	ruleCacheMu   sync.Mutex
	ruleCacheRing []string
	ruleCacheHand int
}

// Compile resolves the definitions of one or more parsed files (in order)
// into an executable policy.
func Compile(files ...*File) (*Policy, error) {
	p := &Policy{
		Tables:  make(map[string]*netaddr.IPSet),
		Dicts:   make(map[string]map[string]string),
		Macros:  make(map[string]string),
		Default: Pass,
		funcs:   DefaultFuncs(),
	}
	// Definitions first, so rules may reference tables defined later in the
	// concatenation (the paper's 99-local-footer constrains rules in 50-).
	var tableDefs []*TableDef
	for _, f := range files {
		for _, s := range f.Stmts {
			switch st := s.(type) {
			case *TableDef:
				tableDefs = append(tableDefs, st)
			case *DictDef:
				d := p.Dicts[st.Name]
				if d == nil {
					d = make(map[string]string)
					p.Dicts[st.Name] = d
				}
				for k, v := range st.Pairs {
					d[k] = v
				}
			case *MacroDef:
				p.Macros[st.Name] = st.Value
			case *Rule:
				p.Rules = append(p.Rules, st)
			}
		}
	}
	if err := p.resolveTables(tableDefs); err != nil {
		return nil, err
	}
	// Validate rule references eagerly: a typo'd table name should fail at
	// load time, not silently never-match at enforcement time.
	for _, r := range p.Rules {
		for _, a := range []AddrExpr{r.From, r.To} {
			if err := p.checkAddr(a, r.Pos); err != nil {
				return nil, err
			}
		}
	}
	// Lower to the flat decision program here, once, so SetPolicy swaps
	// never lower on the decision path (and statically-known embedded
	// `allowed` rules are pre-parsed into the rule cache).
	p.prog.Store(lowerPolicy(p))
	return p, nil
}

// MustCompile parses and compiles src, panicking on error; for tests and
// example setup.
func MustCompile(name, src string) *Policy {
	f, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	p, err := Compile(f)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *Policy) checkAddr(a AddrExpr, pos Pos) error {
	switch a.Kind {
	case AddrTable:
		if _, ok := p.Tables[a.Table]; !ok {
			return fmt.Errorf("%s: undefined table <%s>", pos, a.Table)
		}
	case AddrList:
		for _, e := range a.List {
			if err := p.checkAddr(e, pos); err != nil {
				return err
			}
		}
	}
	return nil
}

// resolveTables flattens nested table references with cycle detection.
func (p *Policy) resolveTables(defs []*TableDef) error {
	merged := make(map[string][]TableElem)
	for _, d := range defs {
		merged[d.Name] = append(merged[d.Name], d.Elems...)
	}
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int)
	var resolve func(name string) (*netaddr.IPSet, error)
	resolve = func(name string) (*netaddr.IPSet, error) {
		if s, ok := p.Tables[name]; ok {
			return s, nil
		}
		elems, ok := merged[name]
		if !ok {
			return nil, fmt.Errorf("pf: undefined table <%s>", name)
		}
		switch state[name] {
		case visiting:
			return nil, fmt.Errorf("pf: table <%s> is defined in terms of itself", name)
		}
		state[name] = visiting
		set := netaddr.NewIPSet()
		for _, e := range elems {
			if e.Ref != "" {
				sub, err := resolve(e.Ref)
				if err != nil {
					return nil, err
				}
				set.AddSet(sub)
				continue
			}
			set.Add(e.Prefix)
		}
		state[name] = done
		p.Tables[name] = set
		return set, nil
	}
	for name := range merged {
		if _, err := resolve(name); err != nil {
			return err
		}
	}
	return nil
}

// Register installs (or replaces) a named predicate function, the paper's
// "functions are user-definable and new functions can be added" (§3.3).
//
// Replacing a built-in invalidates the compiled program's static key
// analysis (a replacement may read anything), so the policy re-lowers and
// drops memoized embedded analyses. Controllers snapshot the compiled
// program: Register before handing the policy to a controller, or
// re-issue SetPolicy afterwards — Register is not synchronized with
// in-flight evaluations.
func (p *Policy) Register(name string, fn Func) {
	p.funcs.Register(name, fn)
	// The registry is the single authority on which names invalidate the
	// static analysis (it records them as overridden); re-lower and drop
	// memoized embedded analyses when this registration was one.
	if p.funcs.Overridden(name) {
		p.ruleCache.Range(func(k, _ any) bool {
			if _, loaded := p.ruleCache.LoadAndDelete(k); loaded {
				p.ruleCacheN.Add(-1)
			}
			return true
		})
		p.ruleCacheMu.Lock()
		p.ruleCacheRing = nil
		p.ruleCacheHand = 0
		p.ruleCacheMu.Unlock()
		p.prog.Store(lowerPolicy(p))
	}
}

// Input is what a policy decision is made from: the flow's 5-tuple and the
// ident++ responses from its two ends (either may be nil when an end did
// not answer, e.g. hosts outside the ident++ deployment, §4 "Incremental
// Benefit").
//
// Ownership contract: Evaluate BORROWS Src and Dst for the duration of the
// call — it reads their sections in place and never copies, mutates, or
// retains them past return. The caller therefore stays the owner: it may
// hand the same responses to many Evaluate calls (the controller's response
// cache does exactly that) or recycle them through AcquireResponse /
// ReleaseResponse the moment the decision is made. The only thing that
// outlives Evaluate is the returned Decision, which aliases nothing from
// the responses.
type Input struct {
	Flow flow.Five
	Src  *wire.Response
	Dst  *wire.Response
}

// Decision is the outcome of evaluating a policy over an input.
type Decision struct {
	Action Action
	// Rule is the rule that decided the action; nil when no rule matched
	// and the default applied.
	Rule *Rule
	// Matched reports whether any rule matched.
	Matched bool
	// KeepState is set when the deciding rule carries `keep state`; the
	// controller then also admits the reverse flow.
	KeepState bool
	// Diags collects evaluation problems (unknown function, missing macro,
	// malformed embedded rules). A rule with a failing predicate does not
	// match; diagnostics surface why.
	Diags []string
}

// Field-use trace bits: the header fields an evaluation actually consulted.
// Two flows identical in every traced field take the same path through the
// compiled program and receive the same verdict — the OVS megaflow insight,
// applied to policy decisions. The bits are set lazily during a traced
// evaluation (EvaluateTraced): a guard that never ran, or that admits every
// value alike (non-negated `any`), contributes nothing.
const (
	TraceSrcIP uint8 = 1 << iota
	TraceSrcPort
	TraceDstIP
	TraceDstPort
)

// TraceAllFields is every traceable header field; a trace equal to it
// describes an exact-tuple decision that cannot be widened.
const TraceAllFields = TraceSrcIP | TraceSrcPort | TraceDstIP | TraceDstPort

// Trace is the per-evaluation field-use record EvaluateTraced returns: which
// header fields the verdict read, and whether it read endpoint keys from
// each end. An endpoint-key read forces that end's IP and port into Fields —
// a daemon's answer is a function of its own end's addressing (the daemon
// resolves the owning process from its local socket), so two flows sharing
// the queried end's IP and port are served the same answer. Proto is never
// traced: it is always part of the equivalence class key (Mask keeps it).
type Trace struct {
	Fields uint8
	// SrcRead/DstRead report that the verdict read at least one endpoint
	// key (or the absence of a response) from that end; the megaflow layer
	// registers fact dependencies only for ends actually read.
	SrcRead, DstRead bool
}

// CoversAllFields reports whether the trace names every header field — an
// exact decision with no wildcarding headroom.
func (t Trace) CoversAllFields() bool { return t.Fields&TraceAllFields == TraceAllFields }

// Mask returns f with every field the evaluation never consulted zeroed,
// the canonical representative of f's traffic equivalence class under this
// trace. Proto is always kept: PF+=2 header guards cannot test it, but
// daemon answers for dynamic per-connection keys can differ across
// protocols, so it is never wildcarded.
func (t Trace) Mask(f flow.Five) flow.Five {
	m := flow.Five{Proto: f.Proto}
	if t.Fields&TraceSrcIP != 0 {
		m.SrcIP = f.SrcIP
	}
	if t.Fields&TraceSrcPort != 0 {
		m.SrcPort = f.SrcPort
	}
	if t.Fields&TraceDstIP != 0 {
		m.DstIP = f.DstIP
	}
	if t.Fields&TraceDstPort != 0 {
		m.DstPort = f.DstPort
	}
	return m
}

// Evaluate runs the ruleset over in with PF's last-match-wins semantics:
// every rule is consulted in order, the final matching rule decides, and a
// matching `quick` rule short-circuits immediately (§3.3).
//
// Since the policy compiler landed, Evaluate is a thin wrapper over the
// lowered decision program (program.go, vm.go); the tree-walking
// interpreter survives as EvaluateInterpreted, the reference
// implementation the differential mode (SetDifferential) checks every
// verdict against.
//
// Evaluation is allocation-free in steady state: the evaluation context
// (including the argument scratch every `with` call resolves into) comes
// from a pool, and in.Src/in.Dst are borrowed, never copied — see Input for
// the ownership contract. Only diagnostics (which indicate a broken policy,
// not a normal decision) allocate.
func (p *Policy) Evaluate(in Input) Decision {
	d := p.EvaluateCompiled(in)
	if differential.Load() {
		ref := p.EvaluateInterpreted(in)
		if d.Action != ref.Action || d.Rule != ref.Rule ||
			d.Matched != ref.Matched || d.KeepState != ref.KeepState {
			panic(fmt.Sprintf(
				"pf: compiled program and interpreter disagree on %s:\n  compiled:    %+v\n  interpreted: %+v",
				in.Flow, d, ref))
		}
	}
	return d
}

// EvaluateCompiled executes the lowered decision program. Callers
// normally use Evaluate; this entry point exists for the differential
// tests and benchmarks that need to name one engine explicitly.
func (p *Policy) EvaluateCompiled(in Input) Decision {
	prog := p.Program()
	c := acquireEvalCtx(p, in, 0)
	c.compiled = true
	d := c.runProgram(prog.rules, Decision{Action: p.Default})
	d.Diags = c.diags
	releaseEvalCtx(c)
	return d
}

// EvaluateTraced executes the compiled program with field-use tracing on:
// alongside the verdict it returns the trace of header fields and endpoint
// reads the evaluation actually performed, preserving the engine's
// short-circuit structure (a guard that never ran is not traced). The
// verdict is identical to Evaluate's; the trace is what lets a caller cache
// it for the whole traffic equivalence class instead of the exact tuple.
// Differential mode cross-checks the traced execution against the
// interpreter exactly as Evaluate does.
func (p *Policy) EvaluateTraced(in Input) (Decision, Trace) {
	prog := p.Program()
	c := acquireEvalCtx(p, in, 0)
	c.compiled = true
	c.tracing = true
	d := c.runProgram(prog.rules, Decision{Action: p.Default})
	d.Diags = c.diags
	tr := Trace{Fields: c.traceFields, SrcRead: c.traceSrcRead, DstRead: c.traceDstRead}
	releaseEvalCtx(c)
	if differential.Load() {
		ref := p.EvaluateInterpreted(in)
		if d.Action != ref.Action || d.Rule != ref.Rule ||
			d.Matched != ref.Matched || d.KeepState != ref.KeepState {
			panic(fmt.Sprintf(
				"pf: traced program and interpreter disagree on %s:\n  compiled:    %+v\n  interpreted: %+v",
				in.Flow, d, ref))
		}
	}
	return d, tr
}

// EvaluateInterpreted walks the parsed rule AST — the original evaluator,
// kept as the reference the compiled program is differentially tested
// against.
func (p *Policy) EvaluateInterpreted(in Input) Decision {
	c := acquireEvalCtx(p, in, 0)
	d := c.run(p.Rules, Decision{Action: p.Default})
	d.Diags = c.diags
	releaseEvalCtx(c)
	return d
}

// run applies the last-match-wins scan to rules, starting from the given
// default decision. Shared by Evaluate and EvalEmbedded.
func (c *evalCtx) run(rules []*Rule, d Decision) Decision {
	for _, r := range rules {
		if !c.ruleMatches(r) {
			continue
		}
		d.Action = r.Action
		d.Rule = r
		d.Matched = true
		d.KeepState = r.KeepState
		if r.Quick {
			break
		}
	}
	return d
}

// evalScratchArgs is the inline capacity for resolved `with` arguments; a
// call with more arguments falls back to one heap slice. verify() calls
// with long endorsement chains are the only realistic way past it.
const evalScratchArgs = 8

type evalCtx struct {
	p     *Policy
	in    Input
	depth int
	diags []string

	// compiled selects the engine embedded `allowed` rules run under, so
	// a differential evaluation exercises each engine end to end rather
	// than converging on shared embedded execution.
	compiled bool

	// tracing arms the field-use trace (EvaluateTraced); the VM and the
	// argument resolver record into traceFields/traceSrcRead/traceDstRead
	// as guards and reads actually execute. Off (the default), the trace
	// hooks cost one predicted branch each.
	tracing                    bool
	traceFields                uint8
	traceSrcRead, traceDstRead bool

	// pub is the *Ctx handed to predicate functions, pointing back at this
	// context; embedding it here keeps the per-call &Ctx{} off the heap.
	pub Ctx
	// valBuf is the argument scratch callFunc resolves into. Arguments are
	// borrowed by the callee for the duration of the call only (see Func).
	valBuf [evalScratchArgs]Value
}

// evalCtxPool recycles evaluation contexts across decisions; evaluation
// sits on the controller's packet-in fast path, where a per-decision
// context allocation (plus its Ctx and argument slice) was measurable.
var evalCtxPool = sync.Pool{New: func() any {
	c := new(evalCtx)
	c.pub.c = c
	return c
}}

func acquireEvalCtx(p *Policy, in Input, depth int) *evalCtx {
	c := evalCtxPool.Get().(*evalCtx)
	c.p = p
	c.in = in
	c.depth = depth
	return c
}

// releaseEvalCtx returns c to the pool. Ownership of c.diags has passed to
// the caller's Decision, so the slice is dropped, not truncated; response
// pointers and resolved values are cleared so the pool never pins a
// response or its strings past the decision that borrowed them.
func releaseEvalCtx(c *evalCtx) {
	c.p = nil
	c.in = Input{}
	c.depth = 0
	c.diags = nil
	c.compiled = false
	c.tracing = false
	c.traceFields = 0
	c.traceSrcRead, c.traceDstRead = false, false
	c.valBuf = [evalScratchArgs]Value{}
	evalCtxPool.Put(c)
}

func (c *evalCtx) diagf(format string, args ...any) {
	c.diags = append(c.diags, fmt.Sprintf(format, args...))
}

func (c *evalCtx) ruleMatches(r *Rule) bool {
	if !c.addrMatches(r.From, c.in.Flow.SrcIP) {
		return false
	}
	if !r.FromPort.Matches(c.in.Flow.SrcPort) {
		return false
	}
	if !c.addrMatches(r.To, c.in.Flow.DstIP) {
		return false
	}
	if !r.ToPort.Matches(c.in.Flow.DstPort) {
		return false
	}
	for _, w := range r.Withs {
		ok, err := c.callFunc(w)
		if err != nil {
			c.diagf("%s: %s: %v", r.Pos, w, err)
			return false
		}
		if !ok {
			return false
		}
	}
	return true
}

func (c *evalCtx) addrMatches(a AddrExpr, ip netaddr.IP) bool {
	var base bool
	switch a.Kind {
	case AddrAny:
		base = true
	case AddrPrefix:
		base = a.Prefix.Contains(ip)
	case AddrTable:
		t, ok := c.p.Tables[a.Table]
		if !ok {
			c.diagf("undefined table <%s>", a.Table)
			return false
		}
		base = t.Contains(ip)
	case AddrList:
		for _, e := range a.List {
			if c.addrMatches(e, ip) {
				base = true
				break
			}
		}
	}
	if a.Neg {
		return !base
	}
	return base
}

// Value is a resolved function argument. Present distinguishes a genuinely
// empty value from a missing key: comparisons against missing information
// are false, never errors — an end-host that stays silent must not be able
// to satisfy (or crash) a predicate.
type Value struct {
	S       string
	Present bool
	// Arg preserves the syntactic form, letting set-valued functions like
	// member re-resolve macros by name.
	Arg Arg
}

func (c *evalCtx) callFunc(fc FuncCall) (bool, error) {
	fn, ok := c.p.funcs.Lookup(fc.Name)
	if !ok {
		return false, fmt.Errorf("unknown function %q", fc.Name)
	}
	// Resolve into the context's scratch when it fits. Calls within one rule
	// run sequentially and a recursing `allowed` gets its own pooled context,
	// so the scratch is never live twice.
	vals := c.valBuf[:0]
	if len(fc.Args) > len(c.valBuf) {
		vals = make([]Value, 0, len(fc.Args))
	}
	for _, a := range fc.Args {
		vals = append(vals, c.resolveArg(a))
	}
	return fn(&c.pub, vals)
}

func (c *evalCtx) resolveArg(a Arg) Value {
	switch a.Kind {
	case ArgLiteral:
		return Value{S: a.Text, Present: true, Arg: a}
	case ArgMacro:
		v, ok := c.p.Macros[a.Text]
		if !ok {
			c.diagf("undefined macro $%s", a.Text)
			return Value{Arg: a}
		}
		return Value{S: v, Present: true, Arg: a}
	case ArgDict, ArgDictConcat:
		return c.resolveDict(a)
	}
	return Value{Arg: a}
}

func (c *evalCtx) resolveDict(a Arg) Value {
	var resp *wire.Response
	switch a.Text {
	case "src":
		resp = c.in.Src
	case "dst":
		resp = c.in.Dst
	default:
		d, ok := c.p.Dicts[a.Text]
		if !ok {
			c.diagf("undefined dict <%s>", a.Text)
			return Value{Arg: a}
		}
		v, ok := d[a.Key]
		return Value{S: v, Present: ok, Arg: a}
	}
	if resp == nil {
		return Value{Arg: a}
	}
	if a.Kind == ArgDictConcat {
		v, ok := resp.Concat(a.Key)
		return Value{S: v, Present: ok, Arg: a}
	}
	v, ok := resp.Latest(a.Key)
	return Value{S: v, Present: ok, Arg: a}
}

// Ctx is the interface the predicate functions see. It exposes controlled
// access to the evaluation state: macro expansion for set arguments and
// recursive rule evaluation for `allowed`.
type Ctx struct {
	c *evalCtx
}

// Flow returns the flow under decision.
func (x *Ctx) Flow() flow.Five {
	if x.c.tracing {
		// A policy function saw the raw tuple; anything it computed may
		// depend on any field, so the verdict cannot be widened at all.
		x.c.traceFields = TraceAllFields
	}
	return x.c.in.Flow
}

// LookupMacro returns a macro body by name.
func (x *Ctx) LookupMacro(name string) (string, bool) {
	v, ok := x.c.p.Macros[name]
	return v, ok
}

// EvalEmbedded parses src as a rule-only PF+=2 fragment and evaluates it
// against the current flow and responses, implementing `allowed` (§3.3).
// The embedded rules run with this policy's tables, dicts, macros and
// functions visible, under the same engine (compiled program or
// interpreter) as the evaluation that reached them. Parse and lowering
// results are memoized in the policy's bounded rule cache.
func (x *Ctx) EvalEmbedded(origin, src string) (Decision, error) {
	if x.c.depth >= maxAllowedDepth {
		return Decision{}, fmt.Errorf("allowed() recursion deeper than %d", maxAllowedDepth)
	}
	entry := x.c.p.embeddedEntry(origin, src, x.c.depth+1)
	if entry.err != nil {
		return Decision{}, entry.err
	}
	sub := acquireEvalCtx(x.c.p, x.c.in, x.c.depth+1)
	sub.compiled = x.c.compiled
	sub.tracing = x.c.tracing
	// Embedded rule sets are default-deny.
	var d Decision
	if sub.compiled {
		d = sub.runProgram(entry.prog, Decision{Action: Block})
	} else {
		d = sub.run(entry.rules, Decision{Action: Block})
	}
	x.c.diags = append(x.c.diags, sub.diags...)
	x.c.traceFields |= sub.traceFields
	x.c.traceSrcRead = x.c.traceSrcRead || sub.traceSrcRead
	x.c.traceDstRead = x.c.traceDstRead || sub.traceDstRead
	releaseEvalCtx(sub)
	return d, nil
}
