package pf

import (
	"reflect"
	"testing"
)

func TestReferencedKeys(t *testing.T) {
	p := MustCompile("t", `
block all
pass from any to any with eq(@src[name], skype) with lt(@src[version], 200)
pass from any to any with includes(@dst[os-patch], MS08-067) with eq(@dst[name], Server)
pass from any to any with eq(*@src[netpath], "a,b")
pass from any to any with member(@src[groupID], users)
`)
	got := p.ReferencedKeys()
	want := []string{"groupID", "name", "netpath", "os-patch", "version"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("keys = %v, want %v", got, want)
	}
}

func TestReferencedKeysIgnoresNonResponseDicts(t *testing.T) {
	p := MustCompile("t", `
dict <pubkeys> { research : abc }
block all
pass from any to any with verify(@src[req-sig], @pubkeys[research], @src[exe-hash])
`)
	got := p.ReferencedKeys()
	want := []string{"exe-hash", "req-sig"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("keys = %v, want %v", got, want)
	}
}

func TestReferencedKeysEmpty(t *testing.T) {
	p := MustCompile("t", `block all`)
	if got := p.ReferencedKeys(); len(got) != 0 {
		t.Errorf("keys = %v, want none", got)
	}
}
