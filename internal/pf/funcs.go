package pf

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"identxx/internal/sig"
)

// Func is a boolean predicate callable from a `with` clause. Returning an
// error marks the rule as non-matching and records a diagnostic; returning
// (false, nil) is an ordinary predicate failure.
//
// args is borrowed scratch owned by the evaluator: it is valid only until
// the function returns and is overwritten by the next predicate call. A
// function that needs an argument past its own return must copy it.
type Func func(ctx *Ctx, args []Value) (bool, error)

// FuncRegistry maps function names to implementations. It is safe for
// concurrent use so operators can register functions while the controller
// is evaluating flows. The live map sits behind an atomic pointer and
// Register copies-on-write, so the per-predicate Lookup on the decision
// fast path is one atomic load plus a map read, no lock.
type FuncRegistry struct {
	mu    sync.Mutex // serializes writers only
	funcs atomic.Pointer[map[string]Func]
	// overridden records built-in names the operator has replaced. The
	// compiler's static key analysis assumes the built-ins' read
	// behavior (they inspect only their resolved arguments); a
	// replacement may do anything — EvalEmbedded included — so analysis
	// of an overridden name must fall back to the conservative bound.
	overridden atomic.Pointer[map[string]bool]
}

// Register installs or replaces a function.
func (r *FuncRegistry) Register(name string, fn Func) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.funcs.Load()
	next := make(map[string]Func, len(*old)+1)
	for k, v := range *old {
		next[k] = v
	}
	next[name] = fn
	r.funcs.Store(&next)
	if staticFuncs[name] || name == "allowed" {
		oldOv := r.overridden.Load()
		nextOv := make(map[string]bool, len(*oldOv)+1)
		for k := range *oldOv {
			nextOv[k] = true
		}
		nextOv[name] = true
		r.overridden.Store(&nextOv)
	}
}

// Lookup returns a function by name.
func (r *FuncRegistry) Lookup(name string) (Func, bool) {
	fn, ok := (*r.funcs.Load())[name]
	return fn, ok
}

// Overridden reports whether a built-in name has been replaced since the
// registry was built; the key analysis (compile.go) consults it.
func (r *FuncRegistry) Overridden(name string) bool {
	return (*r.overridden.Load())[name]
}

// DefaultFuncs returns a registry with the paper's predefined functions
// (§3.3: eq, gt, lt, gte, lte, member, allowed, verify) plus `includes`,
// which Figure 8 uses for patch-level checks.
func DefaultFuncs() *FuncRegistry {
	m := map[string]Func{
		"eq":       fnEq,
		"gt":       fnCompare(func(c int) bool { return c > 0 }),
		"lt":       fnCompare(func(c int) bool { return c < 0 }),
		"gte":      fnCompare(func(c int) bool { return c >= 0 }),
		"lte":      fnCompare(func(c int) bool { return c <= 0 }),
		"member":   fnMember,
		"allowed":  fnAllowed,
		"verify":   fnVerify,
		"includes": fnIncludes,
	}
	r := &FuncRegistry{}
	r.funcs.Store(&m)
	ov := make(map[string]bool)
	r.overridden.Store(&ov)
	return r
}

func need(args []Value, n int, name string) error {
	if len(args) != n {
		return fmt.Errorf("%s expects %d arguments, got %d", name, n, len(args))
	}
	return nil
}

func allPresent(args []Value) bool {
	for _, a := range args {
		if !a.Present {
			return false
		}
	}
	return true
}

// fnEq returns true when both arguments are present and equal. Values that
// both parse as numbers compare numerically, so eq(@src[version], 210)
// holds whether the daemon sent "210" or "210.0".
func fnEq(_ *Ctx, args []Value) (bool, error) {
	if err := need(args, 2, "eq"); err != nil {
		return false, err
	}
	if !allPresent(args) {
		return false, nil
	}
	if an, aok := parseNum(args[0].S); aok {
		if bn, bok := parseNum(args[1].S); bok {
			return an == bn, nil
		}
	}
	return args[0].S == args[1].S, nil
}

// fnCompare builds gt/lt/gte/lte. Numeric when both sides are numeric,
// lexicographic otherwise (so version strings like "2.1.9" still order
// sensibly enough for threshold rules; exact semantics documented).
func fnCompare(accept func(cmp int) bool) Func {
	return func(_ *Ctx, args []Value) (bool, error) {
		if len(args) != 2 {
			return false, fmt.Errorf("comparison expects 2 arguments, got %d", len(args))
		}
		if !allPresent(args) {
			return false, nil
		}
		if an, aok := parseNum(args[0].S); aok {
			if bn, bok := parseNum(args[1].S); bok {
				switch {
				case an < bn:
					return accept(-1), nil
				case an > bn:
					return accept(1), nil
				default:
					return accept(0), nil
				}
			}
		}
		return accept(strings.Compare(args[0].S, args[1].S)), nil
	}
}

func parseNum(s string) (float64, bool) {
	// Cheap reject before ParseFloat: most policy operands are words like
	// "skype", and ParseFloat allocates an error for every non-numeric
	// input — pure garbage on the per-decision fast path. Anything numeric
	// starts with a digit, sign, or point; everything else (including
	// exotic spellings like "inf", which no daemon emits as a number)
	// compares as a string.
	if s == "" {
		return 0, false
	}
	if c := s[0]; (c < '0' || c > '9') && c != '-' && c != '+' && c != '.' {
		return 0, false
	}
	f, err := strconv.ParseFloat(s, 64)
	return f, err == nil
}

// splitSet tokenizes a set-valued string: an optional brace wrapper around
// whitespace- or comma-separated elements ("{ http ssh }", "users,staff",
// "research").
func splitSet(s string) []string {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "{")
	s = strings.TrimSuffix(s, "}")
	return strings.FieldsFunc(s, func(r rune) bool {
		return r == ' ' || r == '\t' || r == ',' || r == '\n'
	})
}

// fnMember tests whether any value of the first argument is in the set
// named by the second (§3.3: "member tests if first argument is in list
// named by second argument"). The first argument may itself be multi-valued
// (a user in several groups). The second argument names a set: a macro
// (member(@src[name], $allowed)), a braces list, a bare name that resolves
// to a macro, or a literal singleton (member(@src[groupID], users)).
func fnMember(ctx *Ctx, args []Value) (bool, error) {
	if err := need(args, 2, "member"); err != nil {
		return false, err
	}
	if !allPresent(args) {
		return false, nil
	}
	setText := args[1].S
	if args[1].Arg.Kind == ArgLiteral {
		if body, ok := ctx.LookupMacro(setText); ok {
			setText = body
		}
	}
	set := splitSet(setText)
	if len(set) == 0 {
		return false, nil
	}
	for _, v := range splitSet(args[0].S) {
		for _, m := range set {
			if v == m {
				return true, nil
			}
		}
	}
	return false, nil
}

// fnIncludes tests whether the first argument, viewed as a token list,
// contains the second — Figure 8's includes(@dst[os-patch], MS08-067)
// where os-patch carries every installed patch id.
func fnIncludes(_ *Ctx, args []Value) (bool, error) {
	if err := need(args, 2, "includes"); err != nil {
		return false, err
	}
	if !allPresent(args) {
		return false, nil
	}
	needle := strings.TrimSpace(args[1].S)
	for _, tok := range splitSet(args[0].S) {
		if tok == needle {
			return true, nil
		}
	}
	return false, nil
}

// fnAllowed evaluates the rules supplied in its argument against the
// current flow and returns whether they pass it (§3.3: "allowed tests if
// flow is allowed by rule specified in argument"). This is the hook that
// lets an administrator's rule defer to user- or third-party-provided
// rules; combined with verify it gives authenticated delegation.
func fnAllowed(ctx *Ctx, args []Value) (bool, error) {
	if err := need(args, 1, "allowed"); err != nil {
		return false, err
	}
	if !args[0].Present {
		return false, nil
	}
	src := strings.TrimSpace(args[0].S)
	if src == "" {
		return false, nil
	}
	d, err := ctx.EvalEmbedded("allowed("+args[0].Arg.String()+")", src)
	if err != nil {
		return false, err
	}
	return d.Action == Pass, nil
}

// fnVerify checks that the first argument is a correct signature, under the
// public key in the second argument, over the remaining arguments (§3.3).
// Any missing argument fails closed.
func fnVerify(_ *Ctx, args []Value) (bool, error) {
	if len(args) < 3 {
		return false, fmt.Errorf("verify expects at least 3 arguments, got %d", len(args))
	}
	if !allPresent(args) {
		return false, nil
	}
	pub, err := sig.ParsePublicKey(args[1].S)
	if err != nil {
		return false, err
	}
	data := make([]string, 0, len(args)-2)
	for _, a := range args[2:] {
		data = append(data, a.S)
	}
	if err := sig.Verify(pub, args[0].S, data...); err != nil {
		return false, nil // a bad signature is a predicate failure, not a rule error
	}
	return true, nil
}
