package pf

import (
	"fmt"

	"identxx/internal/wire"
)

// The VM: a non-recursive executor for the compiled program (program.go).
// One flat loop applies PF's last-match-wins scan over the lowered rules;
// matchers and arguments were pre-resolved at lower time, so the per-rule
// work is pointer-chasing-free header checks plus direct predicate calls.
// The VM shares the pooled evalCtx (and its inline argument scratch) with
// the interpreter, so steady-state execution allocates nothing.

// runProgram applies the last-match-wins scan to compiled rules, starting
// from the given default decision. The compiled counterpart of
// evalCtx.run.
func (c *evalCtx) runProgram(rules []progRule, d Decision) Decision {
	for i := range rules {
		r := &rules[i]
		if !c.progRuleMatches(r) {
			continue
		}
		d.Action = r.action
		d.Rule = r.src
		d.Matched = true
		d.KeepState = r.keepState
		if r.quick {
			break
		}
	}
	return d
}

// progRuleMatches evaluates one compiled rule against the context's
// input: header guards first, then the predicates in order.
func (c *evalCtx) progRuleMatches(r *progRule) bool {
	if !r.headerMatches(c, c.in.Flow) {
		return false
	}
	return c.progCallsMatch(r)
}

// progCallsMatch runs a rule's compiled predicates. An erroring predicate
// records a diagnostic and fails the rule, as in the interpreter.
func (c *evalCtx) progCallsMatch(r *progRule) bool {
	for i := range r.calls {
		pc := &r.calls[i]
		ok, err := c.callProg(pc)
		if err != nil {
			c.diagf("%s: %s: %v", r.src.Pos, pc.fc, err)
			return false
		}
		if !ok {
			return false
		}
	}
	return true
}

// callProg invokes one compiled predicate, resolving its arguments into
// the context's inline scratch.
func (c *evalCtx) callProg(pc *progCall) (bool, error) {
	fn, ok := c.p.funcs.Lookup(pc.name)
	if !ok {
		return false, fmt.Errorf("unknown function %q", pc.name)
	}
	vals := c.valBuf[:0]
	if len(pc.args) > len(c.valBuf) {
		vals = make([]Value, 0, len(pc.args))
	}
	for i := range pc.args {
		vals = append(vals, c.resolveProgArg(&pc.args[i]))
	}
	return fn(&c.pub, vals)
}

// resolveProgArg materializes one compiled argument. Constants were
// resolved at lower time; only endpoint reads touch the responses.
func (c *evalCtx) resolveProgArg(a *progArg) Value {
	switch a.kind {
	case argConst:
		return a.val
	case argSrcKey:
		c.traceSrcEndpointRead()
		return latestValue(c.in.Src, a)
	case argDstKey:
		c.traceDstEndpointRead()
		return latestValue(c.in.Dst, a)
	case argSrcConcat:
		c.traceSrcEndpointRead()
		return concatValue(c.in.Src, a)
	case argDstConcat:
		c.traceDstEndpointRead()
		return concatValue(c.in.Dst, a)
	case argDiag:
		c.diags = append(c.diags, a.diag)
		return a.val
	}
	return Value{Arg: a.arg}
}

// traceSrcEndpointRead records that the verdict read the source end's
// daemon answer. A daemon's answer is a function of its own end's
// addressing (the daemon resolves the querying flow to a socket owner by
// its local IP and port), so any flow sharing that end shares the answer
// — the trace pins the end's IP and port, and SrcRead marks the widened
// entry as depending on that endpoint's facts for revocation.
func (c *evalCtx) traceSrcEndpointRead() {
	if c.tracing {
		c.traceFields |= TraceSrcIP | TraceSrcPort
		c.traceSrcRead = true
	}
}

// traceDstEndpointRead is traceSrcEndpointRead for the destination end.
func (c *evalCtx) traceDstEndpointRead() {
	if c.tracing {
		c.traceFields |= TraceDstIP | TraceDstPort
		c.traceDstRead = true
	}
}

func latestValue(resp *wire.Response, a *progArg) Value {
	if resp == nil {
		return Value{Arg: a.arg}
	}
	v, ok := resp.Latest(a.key)
	return Value{S: v, Present: ok, Arg: a.arg}
}

func concatValue(resp *wire.Response, a *progArg) Value {
	if resp == nil {
		return Value{Arg: a.arg}
	}
	v, ok := resp.Concat(a.key)
	return Value{S: v, Present: ok, Arg: a.arg}
}
