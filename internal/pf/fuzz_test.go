package pf

import (
	"testing"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
	"identxx/internal/wire"
)

// FuzzParsePolicy drives the full parser → compiler → evaluator pipeline
// with arbitrary policy source. The invariants:
//
//   - parse + compile must never panic (errors are fine),
//   - a policy that compiles must lower, and the compiled program and the
//     tree-walking interpreter must return identical verdicts (action,
//     matched rule, keep-state) for every probe input — the differential
//     contract, under fuzz-shaped rulesets instead of the curated corpus.
func FuzzParsePolicy(f *testing.F) {
	seeds := []string{
		"block all",
		"pass all keep state",
		"block quick from any to any\npass from any to any",
		"table <lan> { 192.168.0.0/24 }\nblock all\npass from <lan> to !<lan> port 443",
		"table <a> { 1.2.3.4 }\ntable <b> { <a> 10.0.0.0/8 }\npass from { <b> !5.6.7.8 } to any port { 80, 443 }",
		"allowed = \"{ http ssh }\"\nblock all\npass from any to any with member(@src[name], $allowed)",
		"dict <pubkeys> { research : abc }\nblock all\npass all with eq(@pubkeys[research], abc)",
		"block all\npass from any to any with allowed(@dst[requirements])",
		"block all\npass from any to any with allowed(\"block all pass from any to any port 80\")",
		"block all\npass from any to any with eq(*@src[netpath], \"a,b\")",
		"pass all\nblock all with lt(@src[version], 200) with gt(@src[version], 100)",
		"pass from any to any with verify(@src[req-sig], @pubkeys[k], @src[exe-hash])",
		"block log all\npass from 0.0.0.0/0 to 255.255.255.255",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	// Probe inputs shared across every fuzzed policy: a few header shapes
	// and response sets that reach the dictionary, macro, concat, and
	// embedded-rule paths.
	probeFlows := []flow.Five{
		{SrcIP: netaddr.MustParseIP("192.168.0.5"), DstIP: netaddr.MustParseIP("8.8.8.8"),
			Proto: netaddr.ProtoTCP, SrcPort: 999, DstPort: 443},
		{SrcIP: netaddr.MustParseIP("10.0.0.1"), DstIP: netaddr.MustParseIP("10.0.0.2"),
			Proto: netaddr.ProtoUDP, SrcPort: 53, DstPort: 53},
	}
	probeResp := func(fv flow.Five) *wire.Response {
		r := wire.NewResponse(fv)
		r.Add("name", "skype")
		r.Add("version", "150")
		r.Add("requirements", "block all pass from any to any port 443")
		r.Augment("controller:fuzz").Add("netpath", "b")
		return r
	}

	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse("fuzz", src)
		if err != nil {
			return
		}
		p, err := Compile(file)
		if err != nil {
			return
		}
		for _, fv := range probeFlows {
			for _, withResp := range []bool{false, true} {
				in := Input{Flow: fv}
				if withResp {
					in.Src = probeResp(fv)
					in.Dst = probeResp(fv)
				}
				dc := p.EvaluateCompiled(in)
				di := p.EvaluateInterpreted(in)
				if dc.Action != di.Action || dc.Rule != di.Rule ||
					dc.Matched != di.Matched || dc.KeepState != di.KeepState {
					t.Fatalf("engines disagree on %q (flow %s, resp=%v):\n  compiled    %+v\n  interpreted %+v",
						src, fv, withResp, dc, di)
				}
			}
		}
	})
}
