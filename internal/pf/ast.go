package pf

import (
	"fmt"
	"strings"
	"sync/atomic"

	"identxx/internal/netaddr"
)

// Action is a rule's verdict. The paper defines exactly two: "Currently,
// only two are defined: pass and block" (§3.3).
type Action int

// Rule actions.
const (
	Block Action = iota
	Pass
)

func (a Action) String() string {
	if a == Pass {
		return "pass"
	}
	return "block"
}

// Pos locates a construct in its source file for diagnostics and audit.
type Pos struct {
	File string
	Line int
}

func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("line %d", p.Line)
	}
	return fmt.Sprintf("%s:%d", p.File, p.Line)
}

// File is a parsed PF+=2 source unit.
type File struct {
	Stmts []Stmt
}

// Stmt is a top-level statement: TableDef, DictDef, MacroDef, or *Rule.
type Stmt interface {
	stmt()
	String() string
}

// TableElem is one element of a table body: a prefix or a nested table
// reference ("table <int_hosts> { <lan> <server> }").
type TableElem struct {
	Prefix netaddr.Prefix
	Ref    string // non-empty for a table reference
}

// TableDef declares an address table.
type TableDef struct {
	Name  string
	Elems []TableElem
	Pos   Pos
}

func (*TableDef) stmt() {}

func (t *TableDef) String() string {
	parts := make([]string, len(t.Elems))
	for i, e := range t.Elems {
		if e.Ref != "" {
			parts[i] = "<" + e.Ref + ">"
		} else {
			parts[i] = e.Prefix.String()
		}
	}
	return fmt.Sprintf("table <%s> { %s }", t.Name, strings.Join(parts, " "))
}

// DictDef declares a dictionary (PF+=2's `dict` keyword), e.g. the
// <pubkeys> dictionaries of Figures 5 and 7.
type DictDef struct {
	Name  string
	Keys  []string // insertion order, for deterministic printing
	Pairs map[string]string
	Pos   Pos
}

func (*DictDef) stmt() {}

func (d *DictDef) String() string {
	parts := make([]string, len(d.Keys))
	for i, k := range d.Keys {
		parts[i] = k + " : " + d.Pairs[k]
	}
	return fmt.Sprintf("dict <%s> { %s }", d.Name, strings.Join(parts, " "))
}

// MacroDef declares a macro, e.g. `allowed = "{ http ssh }"`.
type MacroDef struct {
	Name  string
	Value string
	Pos   Pos
}

func (*MacroDef) stmt() {}

func (m *MacroDef) String() string { return fmt.Sprintf("%s = %q", m.Name, m.Value) }

// AddrKind discriminates AddrExpr variants.
type AddrKind int

// Address expression kinds.
const (
	AddrAny AddrKind = iota
	AddrTable
	AddrPrefix
	AddrList
)

// AddrExpr is a from/to operand: `any`, `<table>`, a literal address or
// CIDR, or a braces list of those; optionally negated with `!`.
type AddrExpr struct {
	Kind   AddrKind
	Neg    bool
	Table  string
	Prefix netaddr.Prefix
	List   []AddrExpr
}

// AnyAddr matches every address.
func AnyAddr() AddrExpr { return AddrExpr{Kind: AddrAny} }

func (a AddrExpr) String() string {
	var s string
	switch a.Kind {
	case AddrAny:
		s = "any"
	case AddrTable:
		s = "<" + a.Table + ">"
	case AddrPrefix:
		s = a.Prefix.String()
	case AddrList:
		parts := make([]string, len(a.List))
		for i, e := range a.List {
			parts[i] = e.String()
		}
		s = "{ " + strings.Join(parts, " ") + " }"
	}
	if a.Neg {
		return "!" + s
	}
	return s
}

// PortExpr constrains a port operand; an empty Ranges slice means any port.
type PortExpr struct {
	Ranges []netaddr.PortRange
}

// Matches reports whether p satisfies the expression.
func (pe PortExpr) Matches(p netaddr.Port) bool {
	if len(pe.Ranges) == 0 {
		return true
	}
	for _, r := range pe.Ranges {
		if r.Contains(p) {
			return true
		}
	}
	return false
}

// IsAny reports whether the expression is unconstrained.
func (pe PortExpr) IsAny() bool { return len(pe.Ranges) == 0 }

func (pe PortExpr) String() string {
	if pe.IsAny() {
		return ""
	}
	if len(pe.Ranges) == 1 {
		return "port " + pe.Ranges[0].String()
	}
	parts := make([]string, len(pe.Ranges))
	for i, r := range pe.Ranges {
		parts[i] = r.String()
	}
	return "port { " + strings.Join(parts, " ") + " }"
}

// ArgKind discriminates function-call argument variants.
type ArgKind int

// Argument kinds.
const (
	ArgLiteral    ArgKind = iota // bare word, number, or quoted string
	ArgMacro                     // $name
	ArgDict                      // @name[key] — name is src, dst, or a dict
	ArgDictConcat                // *@name[key]
)

// Arg is one argument to a `with` function call.
type Arg struct {
	Kind ArgKind
	Text string // literal text or macro/dict name
	Key  string // dictionary key for ArgDict/ArgDictConcat
}

func (a Arg) String() string {
	switch a.Kind {
	case ArgMacro:
		return "$" + a.Text
	case ArgDict:
		return fmt.Sprintf("@%s[%s]", a.Text, a.Key)
	case ArgDictConcat:
		return fmt.Sprintf("*@%s[%s]", a.Text, a.Key)
	}
	if strings.ContainsAny(a.Text, " \t") {
		return fmt.Sprintf("%q", a.Text)
	}
	return a.Text
}

// FuncCall is one `with` predicate.
type FuncCall struct {
	Name string
	Args []Arg
	Pos  Pos
}

func (f FuncCall) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", f.Name, strings.Join(parts, ", "))
}

// Rule is one pass/block rule.
type Rule struct {
	Action    Action
	Quick     bool
	From      AddrExpr
	FromPort  PortExpr
	To        AddrExpr
	ToPort    PortExpr
	Withs     []FuncCall
	KeepState bool
	Pos       Pos

	// audit memoizes AuditString. Rules are immutable after parsing, so the
	// rendering never changes; caching it keeps rule naming off the
	// per-decision allocation budget (every audit entry names its rule).
	audit atomic.Pointer[string]
}

func (*Rule) stmt() {}

// AuditString renders the rule with its source position, the form audit
// entries record ("pass from any to any @ policy:3"). The string is computed
// once per rule and cached; concurrent callers may race the first render but
// always observe a complete string.
func (r *Rule) AuditString() string {
	if s := r.audit.Load(); s != nil {
		return *s
	}
	s := fmt.Sprintf("%s @ %s", r, r.Pos)
	r.audit.Store(&s)
	return s
}

func (r *Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Action.String())
	if r.Quick {
		b.WriteString(" quick")
	}
	fromAny := r.From.Kind == AddrAny && !r.From.Neg && r.FromPort.IsAny()
	toAny := r.To.Kind == AddrAny && !r.To.Neg && r.ToPort.IsAny()
	if fromAny && toAny {
		b.WriteString(" all")
	} else {
		b.WriteString(" from ")
		b.WriteString(r.From.String())
		if !r.FromPort.IsAny() {
			b.WriteString(" ")
			b.WriteString(r.FromPort.String())
		}
		b.WriteString(" to ")
		b.WriteString(r.To.String())
		if !r.ToPort.IsAny() {
			b.WriteString(" ")
			b.WriteString(r.ToPort.String())
		}
	}
	for _, w := range r.Withs {
		b.WriteString(" with ")
		b.WriteString(w.String())
	}
	if r.KeepState {
		b.WriteString(" keep state")
	}
	return b.String()
}

// Rules returns the rule statements of the file in order.
func (f *File) Rules() []*Rule {
	var out []*Rule
	for _, s := range f.Stmts {
		if r, ok := s.(*Rule); ok {
			out = append(out, r)
		}
	}
	return out
}

func (f *File) String() string {
	parts := make([]string, len(f.Stmts))
	for i, s := range f.Stmts {
		parts[i] = s.String()
	}
	return strings.Join(parts, "\n")
}
