package pf

import (
	"os"
	"path/filepath"
	"testing"
	"testing/fstest"
)

func TestLoadControlFSAlphabeticalOrder(t *testing.T) {
	// 99- must override 00-: last match wins only if files concatenate in
	// alphabetical order.
	fsys := fstest.MapFS{
		"00-base.control":  {Data: []byte("block all\n")},
		"99-final.control": {Data: []byte("pass from any to any\n")},
		"ignored.txt":      {Data: []byte("not a control file")},
	}
	p, err := LoadControlFS(fsys, ".")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(p.Rules))
	}
	d := p.Evaluate(Input{Flow: tcp("1.1.1.1", 1, "2.2.2.2", 2)})
	if d.Action != Pass {
		t.Error("99- file should evaluate after 00- file")
	}
}

func TestLoadControlFSReversedNamesReverseOutcome(t *testing.T) {
	fsys := fstest.MapFS{
		"00-base.control":  {Data: []byte("pass from any to any\n")},
		"99-final.control": {Data: []byte("block all\n")},
	}
	p, err := LoadControlFS(fsys, ".")
	if err != nil {
		t.Fatal(err)
	}
	d := p.Evaluate(Input{Flow: tcp("1.1.1.1", 1, "2.2.2.2", 2)})
	if d.Action != Block {
		t.Error("block in 99- should win")
	}
}

func TestLoadControlFSEmpty(t *testing.T) {
	if _, err := LoadControlFS(fstest.MapFS{}, "."); err == nil {
		t.Error("empty dir should error")
	}
}

func TestLoadControlFSParseErrorNamesFile(t *testing.T) {
	fsys := fstest.MapFS{
		"10-bad.control": {Data: []byte("pass from bogus to any\n")},
	}
	_, err := LoadControlFS(fsys, ".")
	if err == nil {
		t.Fatal("expected parse error")
	}
	if got := err.Error(); got == "" || !contains(got, "10-bad.control") {
		t.Errorf("error should name the file: %v", err)
	}
}

func TestLoadControlDirOnDisk(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"00-header.control": "table <lan> { 10.0.0.0/8 }\nblock all\n",
		"50-app.control":    "pass from <lan> to any keep state\n",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p, err := LoadControlDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := p.Evaluate(Input{Flow: tcp("10.1.2.3", 1, "8.8.8.8", 443)})
	if d.Action != Pass || !d.KeepState {
		t.Errorf("decision = %+v", d)
	}
}

func TestLoadSourcesOrdering(t *testing.T) {
	p, err := LoadSources(map[string]string{
		"b.control": "pass from any to any\n",
		"a.control": "block all\n",
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := p.Evaluate(Input{Flow: tcp("1.1.1.1", 1, "2.2.2.2", 2)}); d.Action != Pass {
		t.Error("sources must sort by name before concatenation")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}
