package pf

import (
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	"identxx/internal/flow"
)

// TestMain turns on differential mode for the whole package: every
// Evaluate in the suite (the full eval_test.go corpus included) runs both
// the compiled program and the tree-walking interpreter and panics on any
// verdict disagreement. The acceptance contract of the policy compiler.
func TestMain(m *testing.M) {
	prev := SetDifferential(true)
	code := m.Run()
	SetDifferential(prev)
	os.Exit(code)
}

func TestDifferentialModeEnabled(t *testing.T) {
	if !differential.Load() {
		t.Fatal("differential mode should be on for the pf test suite")
	}
}

// TestCompiledMatchesInterpreterOnCorpus spot-checks the two engines
// explicitly (beyond the implicit check every Evaluate performs under
// differential mode) across policies that exercise each compiled
// construct: tables, lists, negation, ports, quick, macros, dicts,
// concat accessors, embedded rules, and broken references.
func TestCompiledMatchesInterpreterOnCorpus(t *testing.T) {
	policies := []string{
		`block all`,
		`pass all`,
		`block all
pass from any to any`,
		`block quick from any to any
pass from any to any`,
		`table <lan> { 192.168.0.0/24 }
block all
pass from <lan> to !<lan> port 443 keep state`,
		`table <server> { 192.168.1.1 }
table <lan> { 192.168.0.0/24 }
table <int_hosts> { <lan> <server> }
block all
pass from { <int_hosts> 10.9.9.9 } to { !<lan> 8.8.8.8 } port { 80, 443 }`,
		`allowed = "{ http ssh }"
block all
pass from any to any with member(@src[name], $allowed)`,
		`dict <pubkeys> { research : not-a-key }
pass all
block all with eq(@pubkeys[research], not-a-key)`,
		`block all
pass from any to any with eq(*@src[netpath], "a,b")`,
		`block all
pass from any to any with allowed(@dst[requirements])`,
		`block all
pass from any to any with allowed("block all pass from any to any port 80")`,
		`pass all
block all with frob(@src[x])
block all with eq($missing, 1)
block all with eq(@nodict[k], 1)`,
		`block all
pass from 10.0.0.0/8 to any port 80
pass from any to any port 443 with eq(@src[name], web)`,
	}
	flows := []flow.Five{
		tcp("192.168.0.5", 999, "8.8.8.8", 443),
		tcp("192.168.0.5", 999, "192.168.1.1", 80),
		tcp("10.0.0.1", 40000, "10.0.0.2", 80),
		tcp("10.9.9.9", 1, "1.2.3.4", 22),
	}
	responses := [][]string{
		nil,
		{"name", "http"},
		{"name", "web", "netpath", "a", "requirements", "block all pass from any to any port 80"},
		{"x", "1", "requirements", "pass all"},
	}
	for pi, src := range policies {
		p, err := Compile(mustParse(t, src))
		if err != nil {
			t.Fatalf("policy %d: %v", pi, err)
		}
		for _, f := range flows {
			for _, kv := range responses {
				in := Input{Flow: f}
				if kv != nil {
					in.Src = resp(f, kv...)
					in.Dst = resp(f, kv...)
				}
				dc := p.EvaluateCompiled(in)
				di := p.EvaluateInterpreted(in)
				if dc.Action != di.Action || dc.Rule != di.Rule || dc.Matched != di.Matched || dc.KeepState != di.KeepState {
					t.Errorf("policy %d flow %s resp %v:\n  compiled    %+v\n  interpreted %+v",
						pi, f, kv, dc, di)
				}
			}
		}
	}
}

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestStaticKeyAnalysisPerRule(t *testing.T) {
	p := MustCompile("t", `
block all
pass from any to any port 80 with eq(@src[name], web) keep state
pass from any to any port 22 with eq(@src[userID], root) with includes(@dst[os-patch], MS08-067)
pass from any to any port 25 with allowed(@dst[requirements])
pass from any to any port 443 with custom(@src[pid])
pass from 10.0.0.0/8 to any port 7777
`)
	prog := p.Program()
	type want struct {
		src, dst       []string
		srcAll, dstAll bool
	}
	wants := []want{
		{},
		{src: []string{"name"}},
		{src: []string{"userID"}, dst: []string{"os-patch"}},
		{dst: []string{"requirements"}, srcAll: true, dstAll: true},
		{src: []string{"pid"}, srcAll: true, dstAll: true},
		{},
	}
	if len(prog.rules) != len(wants) {
		t.Fatalf("rules = %d, want %d", len(prog.rules), len(wants))
	}
	for i, w := range wants {
		r := &prog.rules[i]
		if !reflect.DeepEqual(r.srcKeys, w.src) && !(len(r.srcKeys) == 0 && len(w.src) == 0) {
			t.Errorf("rule %d srcKeys = %v, want %v", i, r.srcKeys, w.src)
		}
		if !reflect.DeepEqual(r.dstKeys, w.dst) && !(len(r.dstKeys) == 0 && len(w.dst) == 0) {
			t.Errorf("rule %d dstKeys = %v, want %v", i, r.dstKeys, w.dst)
		}
		if r.srcAll != w.srcAll || r.dstAll != w.dstAll {
			t.Errorf("rule %d all flags = (%v,%v), want (%v,%v)", i, r.srcAll, r.dstAll, w.srcAll, w.dstAll)
		}
	}
}

func TestStaticKeyAnalysisSeesThroughLiteralAllowed(t *testing.T) {
	p := MustCompile("t", `
block all
pass from any to any with allowed("block all pass all with eq(@src[name], research-app) with eq(@dst[name], research-app)")
`)
	prog := p.Program()
	r := &prog.rules[1]
	if r.srcAll || r.dstAll {
		t.Errorf("literal allowed() should stay statically bounded; got all=(%v,%v)", r.srcAll, r.dstAll)
	}
	if !reflect.DeepEqual(r.srcKeys, []string{"name"}) || !reflect.DeepEqual(r.dstKeys, []string{"name"}) {
		t.Errorf("keys = src%v dst%v, want src[name] dst[name]", r.srcKeys, r.dstKeys)
	}
	// One source of truth: ReferencedKeys now sees the embedded keys too.
	if got := p.ReferencedKeys(); !reflect.DeepEqual(got, []string{"name"}) {
		t.Errorf("ReferencedKeys = %v, want [name]", got)
	}
}

func TestStaticKeyAnalysisThroughMacroAndDictAllowed(t *testing.T) {
	p := MustCompile("t", `
reqs = "block all pass all with eq(@src[exe-hash], abc)"
dict <vendor> { skype : "block all pass all with member(@dst[groupID], ops)" }
block all
pass from any to any port 1 with allowed($reqs)
pass from any to any port 2 with allowed(@vendor[skype])
`)
	prog := p.Program()
	if got := prog.rules[1].srcKeys; !reflect.DeepEqual(got, []string{"exe-hash"}) {
		t.Errorf("macro allowed srcKeys = %v", got)
	}
	if prog.rules[1].srcAll || prog.rules[1].dstAll {
		t.Error("macro allowed should be statically bounded")
	}
	if got := prog.rules[2].dstKeys; !reflect.DeepEqual(got, []string{"groupID"}) {
		t.Errorf("dict allowed dstKeys = %v", got)
	}
	if got := p.ReferencedKeys(); !reflect.DeepEqual(got, []string{"exe-hash", "groupID"}) {
		t.Errorf("ReferencedKeys = %v", got)
	}
}

func TestPrepassHeaderOnlyDecision(t *testing.T) {
	p := MustCompile("t", `
block all
pass from 10.0.0.0/8 to any port 80 keep state
pass from any to any port 443 with eq(@src[name], web)
`)
	prog := p.Program()
	if !prog.MaybeHeaderOnly() {
		t.Fatal("program should admit header-only decisions")
	}

	// Port-80 flow from 10/8: the 443 rule cannot header-match, so the
	// verdict is decidable without any endpoint information.
	d, ok, src, dst := prog.Prepass(tcp("10.1.2.3", 999, "8.8.8.8", 80), nil, nil)
	if !ok {
		t.Fatal("port-80 flow should be header-only decidable")
	}
	if d.Action != Pass || !d.KeepState || d.Rule == nil {
		t.Errorf("header-only decision = %+v", d)
	}
	if len(src) != 0 || len(dst) != 0 {
		t.Errorf("decidable flow should need no hints, got %v / %v", src, dst)
	}
	// And the decision must agree with full evaluation.
	if full := p.Evaluate(Input{Flow: tcp("10.1.2.3", 999, "8.8.8.8", 80)}); full.Action != d.Action || full.Rule != d.Rule {
		t.Errorf("prepass %+v != evaluate %+v", d, full)
	}

	// Port-443 flow: the key-requiring rule header-matches, so the flow
	// is not decidable and the hints name exactly its keys.
	_, ok, src, dst = prog.Prepass(tcp("10.1.2.3", 999, "8.8.8.8", 443), nil, nil)
	if ok {
		t.Fatal("port-443 flow must not be header-only decidable")
	}
	if !reflect.DeepEqual(src, []string{"name"}) || len(dst) != 0 {
		t.Errorf("hints = %v / %v, want [name] / []", src, dst)
	}
}

func TestPrepassQuickStopsScan(t *testing.T) {
	p := MustCompile("t", `
block quick from 192.168.0.0/16 to any
pass from any to any with eq(@src[name], web)
`)
	p.Default = Block
	prog := p.Program()
	// A 192.168/16 source hits the quick block before any key-requiring
	// rule can be consulted: decidable, no hints.
	d, ok, _, _ := prog.Prepass(tcp("192.168.0.9", 1, "8.8.8.8", 80), nil, nil)
	if !ok || d.Action != Block || !d.Matched {
		t.Errorf("quick header rule should decide: ok=%v d=%+v", ok, d)
	}
	// Any other source still needs the eq rule's key.
	_, ok, src, _ := prog.Prepass(tcp("10.0.0.1", 1, "8.8.8.8", 80), nil, nil)
	if ok || !reflect.DeepEqual(src, []string{"name"}) {
		t.Errorf("non-quick path: ok=%v src=%v", ok, src)
	}
}

func TestPrepassUnboundedRuleFallsBackToAllKeys(t *testing.T) {
	p := MustCompile("t", `
block all
pass from any to any port 80 with eq(@src[name], web) with eq(@dst[vendor], x)
pass from any to any port 25 with allowed(@dst[requirements])
`)
	prog := p.Program()
	_, ok, src, dst := prog.Prepass(tcp("1.1.1.1", 1, "2.2.2.2", 25), nil, nil)
	if ok {
		t.Fatal("allowed() flow must not be header-only")
	}
	// The unbounded rule falls back to every statically-known key for
	// each end.
	if !reflect.DeepEqual(src, []string{"name"}) {
		t.Errorf("src hints = %v, want the program-wide src union [name]", src)
	}
	if !reflect.DeepEqual(dst, []string{"requirements", "vendor"}) {
		t.Errorf("dst hints = %v, want [requirements vendor]", dst)
	}
}

func TestMaybeHeaderOnlyGate(t *testing.T) {
	never := MustCompile("t", `
block all
pass from any to any with eq(@src[name], skype)
`)
	if never.Program().MaybeHeaderOnly() {
		t.Error("universal key-requiring rule should disable the pre-pass")
	}
	maybe := MustCompile("t", `
block all
pass from any to any port 443 with eq(@src[name], web)
`)
	if !maybe.Program().MaybeHeaderOnly() {
		t.Error("port-guarded key rule should keep the pre-pass possible")
	}
	quickShield := MustCompile("t", `
pass quick from any to any
pass from any to any with eq(@src[name], skype)
`)
	if !quickShield.Program().MaybeHeaderOnly() {
		t.Error("unconditional quick rule before the key rule keeps every flow decidable")
	}
}

func TestHintsMatchPrepassHints(t *testing.T) {
	p := MustCompile("t", `
block all
pass from any to any port 80 with eq(@src[name], web)
pass from any to any port 22 with eq(@dst[userID], root)
`)
	prog := p.Program()
	for _, f := range []flow.Five{
		tcp("1.1.1.1", 1, "2.2.2.2", 80),
		tcp("1.1.1.1", 1, "2.2.2.2", 22),
		tcp("1.1.1.1", 1, "2.2.2.2", 9999),
	} {
		_, _, psrc, pdst := prog.Prepass(f, nil, nil)
		hsrc, hdst := prog.Hints(f, nil, nil)
		if !reflect.DeepEqual(psrc, hsrc) || !reflect.DeepEqual(pdst, hdst) {
			t.Errorf("flow %s: Prepass hints (%v,%v) != Hints (%v,%v)", f, psrc, pdst, hsrc, hdst)
		}
	}
}

func TestRuleCacheBounded(t *testing.T) {
	p := MustCompile("t", `
block all
pass from any to any with allowed(@src[requirements])
`)
	f := tcp("1.1.1.1", 1, "2.2.2.2", 80)
	// A churning requirements value: every flow presents a distinct rule
	// text, the way a hostile (or just buggy) endpoint fleet would.
	for i := 0; i < maxRuleCacheEntries+200; i++ {
		req := fmt.Sprintf("block all pass from any to any port %d", 1+i%60000)
		d := p.Evaluate(Input{Flow: f, Src: resp(f, "requirements", req)})
		_ = d
	}
	entries, evictions := p.RuleCacheStats()
	if entries > maxRuleCacheEntries {
		t.Errorf("rule cache holds %d entries, cap is %d", entries, maxRuleCacheEntries)
	}
	if evictions == 0 {
		t.Error("expected evictions after overflowing the cache")
	}
	// The cache must still serve correct results after eviction churn.
	d := p.Evaluate(Input{Flow: f, Src: resp(f, "requirements", "block all pass from any to any port 80")})
	if d.Action != Pass {
		t.Errorf("post-eviction evaluation = %+v, want pass", d)
	}
}

func TestProgramExplain(t *testing.T) {
	p := MustCompile("t", `
block all
pass from 10.0.0.0/8 to any port 80 with eq(@src[name], web)
`)
	var b strings.Builder
	p.Program().Explain(&b)
	out := b.String()
	for _, want := range []string{"program: 2 rules", "src[name]", "header-only"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain output missing %q:\n%s", want, out)
		}
	}
}

// TestRegisterOverridingBuiltinDisablesStaticAnalysis: replacing a
// built-in (whose read behavior the key analysis assumed) must re-lower
// the program with that name treated conservatively — otherwise the
// pre-pass could decide flows whose replacement predicate actually reads
// endpoint keys through EvalEmbedded.
func TestRegisterOverridingBuiltinDisablesStaticAnalysis(t *testing.T) {
	p := MustCompile("t", `
m = "x"
block all
pass from any to any port 80 with member($m, x)
`)
	f := tcp("1.1.1.1", 1, "2.2.2.2", 80)
	if _, ok, _, _ := p.Program().Prepass(f, nil, nil); !ok {
		t.Fatal("with the builtin member, the port-80 flow is header-only decidable")
	}
	p.Register("member", func(ctx *Ctx, args []Value) (bool, error) {
		d, err := ctx.EvalEmbedded("override", "block all pass all with eq(@src[name], web)")
		if err != nil {
			return false, err
		}
		return d.Action == Pass, nil
	})
	prog := p.Program()
	if _, ok, _, _ := prog.Prepass(f, nil, nil); ok {
		t.Fatal("after overriding member, the rule may read endpoint keys; Prepass must not decide")
	}
	if r := &prog.rules[1]; !r.srcAll || !r.dstAll {
		t.Errorf("overridden builtin should be unbounded; got all=(%v,%v)", r.srcAll, r.dstAll)
	}
	// And evaluation uses the replacement (differential mode checks both
	// engines agree on it).
	in := Input{Flow: f, Src: resp(f, "name", "web")}
	if d := p.Evaluate(in); d.Action != Pass {
		t.Errorf("replacement member should pass via embedded rules: %+v", d)
	}
}

// TestTruncatedEmbeddedAnalysisNotCached: an allowed() chain analyzed
// near the depth cap gets its deepest level cut off; that truncated
// analysis must not be memoized, or a shallower call site of the same
// source would inherit key sets missing the deepest reads.
func TestTruncatedEmbeddedAnalysisNotCached(t *testing.T) {
	p := MustCompile("t", `
a = "pass all with allowed($b)"
b = "pass all with allowed($c)"
c = "pass all with allowed($d)"
d = "pass all with allowed($e)"
e = "pass all with eq(@src[secret], 1)"
block all
pass from any to any port 1 with allowed($a)
pass from any to any port 2 with allowed($c)
`)
	prog := p.Program()
	// Rule 2 reaches e at runtime depth 3 (< cap), so its static keys
	// must include the deepest read even though rule 1's analysis of the
	// same c/d/e sources was truncated at the cap.
	r2 := &prog.rules[2]
	found := false
	for _, k := range r2.srcKeys {
		if k == "secret" {
			found = true
		}
	}
	if !found && !r2.srcAll {
		t.Errorf("allowed($c) rule must see @src[secret] (keys=%v all=%v): truncated analysis leaked into the cache",
			r2.srcKeys, r2.srcAll)
	}
}

func TestRegisterAfterCompileStillWorksCompiled(t *testing.T) {
	// Register replaces functions after lowering; the VM must observe the
	// live registry, not a compile-time snapshot.
	p := MustCompile("t", `
block all
pass from any to any with always()
`)
	p.Register("always", func(_ *Ctx, _ []Value) (bool, error) { return true, nil })
	if d := p.EvaluateCompiled(Input{Flow: tcp("1.1.1.1", 1, "2.2.2.2", 2)}); d.Action != Pass {
		t.Errorf("late-registered function not visible to VM: %+v", d)
	}
}

func TestCompiledEvaluationAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting")
	}
	prev := SetDifferential(false)
	defer SetDifferential(prev)
	p := MustCompile("t", `
table <lan> { 192.168.0.0/24 }
block all
pass from <lan> to !<lan> port 443 with eq(@src[name], web) keep state
`)
	f := tcp("192.168.0.5", 999, "8.8.8.8", 443)
	in := Input{Flow: f, Src: resp(f, "name", "web")}
	if avg := testing.AllocsPerRun(1000, func() {
		if d := p.Evaluate(in); d.Action != Pass {
			t.Fatal("wrong decision")
		}
	}); avg > 0 {
		t.Errorf("compiled evaluation allocates %.1f objects/op, want 0", avg)
	}
	// The pre-pass must be allocation-free too once hint capacity exists.
	prog := p.Program()
	src := make([]string, 0, 8)
	dst := make([]string, 0, 8)
	if avg := testing.AllocsPerRun(1000, func() {
		_, _, src, dst = prog.Prepass(f, src[:0], dst[:0])
	}); avg > 0 {
		t.Errorf("Prepass allocates %.1f objects/op, want 0", avg)
	}
}
