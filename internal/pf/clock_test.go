package pf

import (
	"fmt"
	"testing"
)

// TestRuleCacheClockRetainsHotEntries pins the CLOCK eviction contract:
// an attacker (or a buggy fleet) churning cold `requirements` strings
// through the embedded-rules memo cannot evict an entry that stays in
// active use. The previous map-iteration eviction picked victims
// arbitrarily, so sustained churn would eventually evict the hot entry
// and put a full parse+lower back on the decision path.
func TestRuleCacheClockRetainsHotEntries(t *testing.T) {
	p := MustCompile("t", `
block all
pass from any to any with allowed(@src[requirements])
`)
	f := tcp("1.1.1.1", 1, "2.2.2.2", 443)
	eval := func(req string) Decision {
		return p.Evaluate(Input{Flow: f, Src: resp(f, "requirements", req)})
	}

	// Warm the clock past its first full revolution: when the cache first
	// overflows, every reference bit is set, so the hand's initial sweep
	// clears them all and evicts the ring's head regardless of hotness —
	// a one-time degeneracy inherent to CLOCK. The retention guarantee is
	// a steady-state property, so the hot entry is established after it.
	next := 0
	cold := func() string {
		next++
		return fmt.Sprintf("block all pass from any to any port %d", 1+next%60000)
	}
	for i := 0; i < maxRuleCacheEntries+100; i++ {
		eval(cold())
	}

	const hot = "block all pass from any to any port 443"
	if d := eval(hot); d.Action != Pass {
		t.Fatalf("hot requirements = %v, want pass", d.Action)
	}
	hotEntry, ok := p.ruleCache.Load(hot)
	if !ok {
		t.Fatal("hot entry not memoized")
	}

	// Churn three cache capacities of cold keys while touching the hot
	// entry often enough to count as "in use" (every 64th evaluation —
	// far sparser than the hand's revisit period).
	for i := 0; i < 3*maxRuleCacheEntries; i++ {
		eval(cold())
		if i%64 == 0 {
			eval(hot)
		}
	}

	cur, ok := p.ruleCache.Load(hot)
	if !ok {
		t.Fatal("hot entry evicted by cold churn")
	}
	if cur != hotEntry {
		t.Error("hot entry was evicted and re-admitted (reparsed) during churn")
	}
	entries, evictions := p.RuleCacheStats()
	if entries > maxRuleCacheEntries {
		t.Errorf("cache holds %d entries, cap is %d", entries, maxRuleCacheEntries)
	}
	if evictions == 0 {
		t.Error("expected cold-entry evictions during churn")
	}
	if d := eval(hot); d.Action != Pass {
		t.Errorf("post-churn hot evaluation = %v, want pass", d.Action)
	}
}
