// Package pf implements PF+=2, the paper's policy language (§3.3): the
// subset of OpenBSD PF the paper uses — `pass`/`block` rules evaluated
// last-match-wins with `quick`, tables, macros, lists, port operands,
// `keep state` — extended with the `dict` keyword, `with` predicates over
// ident++ response dictionaries (@src/@dst), the `*@src[key]` concatenation
// accessor, and user-definable boolean functions including the predefined
// eq/gt/lt/gte/lte/member/allowed/verify set (plus `includes`, which
// Figure 8 of the paper uses).
//
// Rule statements are keyword-delimited rather than line-delimited: daemon
// configuration files embed multiple rules in a single logical line
// (Figure 3's `requirements` value), so a new statement begins at each
// `pass`, `block`, `table`, `dict`, or macro assignment.
package pf

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tokEOF      tokKind = iota
	tokWord             // bare word: identifiers, numbers, IPs, CIDRs
	tokString           // "quoted string"
	tokTable            // <name>
	tokMacro            // $name
	tokAt               // @name
	tokStarAt           // *@name
	tokBang             // !
	tokComma            // ,
	tokColon            // :
	tokAssign           // =
	tokLParen           // (
	tokRParen           // )
	tokLBracket         // [
	tokRBracket         // ]
	tokLBrace           // {
	tokRBrace           // }
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokWord:
		return "word"
	case tokString:
		return "string"
	case tokTable:
		return "<table>"
	case tokMacro:
		return "$macro"
	case tokAt:
		return "@dict"
	case tokStarAt:
		return "*@dict"
	case tokBang:
		return "'!'"
	case tokComma:
		return "','"
	case tokColon:
		return "':'"
	case tokAssign:
		return "'='"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	}
	return "unknown token"
}

type token struct {
	kind tokKind
	text string // semantic text (without sigils/brackets)
	line int
}

// lexer scans PF+=2 source into tokens. Comments (# to end of line) and
// backslash-newline continuations are treated as whitespace; newlines are
// otherwise insignificant because statements are keyword-delimited.
type lexer struct {
	src  string
	pos  int
	line int
	file string
}

func newLexer(file, src string) *lexer {
	return &lexer{src: src, line: 1, file: file}
}

func (l *lexer) errorf(line int, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", l.file, line, fmt.Sprintf(format, args...))
}

// isWordChar reports whether c can appear inside a bare word. Words carry
// identifiers (app-name, research-app), versions (210), addresses
// (192.168.0.0/24), patch ids (MS08-067), domains (skype.com) and unpadded
// base64 key material (A-Za-z0-9+/).
func isWordChar(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	}
	switch c {
	case '-', '_', '.', '/', '+':
		return true
	}
	return false
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '\\':
			// Line continuation: backslash followed by optional spaces and a
			// newline. A backslash anywhere else is an error.
			j := l.pos + 1
			for j < len(l.src) && (l.src[j] == ' ' || l.src[j] == '\t' || l.src[j] == '\r') {
				j++
			}
			if j < len(l.src) && l.src[j] == '\n' {
				l.line++
				l.pos = j + 1
			} else if j >= len(l.src) {
				l.pos = j
			} else {
				return token{}, l.errorf(l.line, "stray '\\'")
			}
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return l.scanToken()
		}
	}
	return token{kind: tokEOF, line: l.line}, nil
}

func (l *lexer) scanToken() (token, error) {
	line := l.line
	c := l.src[l.pos]
	switch c {
	case '!':
		l.pos++
		return token{tokBang, "!", line}, nil
	case ',':
		l.pos++
		return token{tokComma, ",", line}, nil
	case ':':
		l.pos++
		return token{tokColon, ":", line}, nil
	case '=':
		l.pos++
		return token{tokAssign, "=", line}, nil
	case '(':
		l.pos++
		return token{tokLParen, "(", line}, nil
	case ')':
		l.pos++
		return token{tokRParen, ")", line}, nil
	case '[':
		l.pos++
		return token{tokLBracket, "[", line}, nil
	case ']':
		l.pos++
		return token{tokRBracket, "]", line}, nil
	case '{':
		l.pos++
		return token{tokLBrace, "{", line}, nil
	case '}':
		l.pos++
		return token{tokRBrace, "}", line}, nil
	case '"':
		return l.scanString()
	case '<':
		return l.scanTableRef()
	case '$':
		l.pos++
		w, err := l.scanWordText()
		if err != nil {
			return token{}, err
		}
		return token{tokMacro, w, line}, nil
	case '@':
		l.pos++
		w, err := l.scanWordText()
		if err != nil {
			return token{}, err
		}
		return token{tokAt, w, line}, nil
	case '*':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '@' {
			l.pos += 2
			w, err := l.scanWordText()
			if err != nil {
				return token{}, err
			}
			return token{tokStarAt, w, line}, nil
		}
		return token{}, l.errorf(line, "stray '*' (did you mean *@src[...]?)")
	}
	if isWordChar(c) {
		w, err := l.scanWordText()
		if err != nil {
			return token{}, err
		}
		return token{tokWord, w, line}, nil
	}
	return token{}, l.errorf(line, "unexpected character %q", string(c))
}

func (l *lexer) scanWordText() (string, error) {
	start := l.pos
	for l.pos < len(l.src) && isWordChar(l.src[l.pos]) {
		l.pos++
	}
	if l.pos == start {
		return "", l.errorf(l.line, "expected identifier")
	}
	return l.src[start:l.pos], nil
}

func (l *lexer) scanTableRef() (token, error) {
	line := l.line
	l.pos++ // consume '<'
	start := l.pos
	for l.pos < len(l.src) && isWordChar(l.src[l.pos]) {
		l.pos++
	}
	if l.pos == start || l.pos >= len(l.src) || l.src[l.pos] != '>' {
		return token{}, l.errorf(line, "malformed table reference")
	}
	name := l.src[start:l.pos]
	l.pos++ // consume '>'
	return token{tokTable, name, line}, nil
}

func (l *lexer) scanString() (token, error) {
	line := l.line
	l.pos++ // consume opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			return token{tokString, b.String(), line}, nil
		case '\n':
			l.line++
			b.WriteByte(c)
			l.pos++
		case '\\':
			// Inside strings a backslash-newline is a continuation; any
			// other escape is kept verbatim (PF strings are not C strings).
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\n' {
				l.line++
				l.pos += 2
				continue
			}
			b.WriteByte(c)
			l.pos++
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return token{}, l.errorf(line, "unterminated string")
}

// lexAll scans the whole input, for the parser's token buffer.
func lexAll(file, src string) ([]token, error) {
	l := newLexer(file, src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
