package pf

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ControlExt is the extension of controller configuration files (§3.4:
// "The controller's configuration files reside in a well known location and
// have the .control extension").
const ControlExt = ".control"

// LoadControlDir reads every *.control file in dir in alphabetical order,
// parses them, and compiles the concatenation into one policy — exactly the
// §3.4 semantics ("the files are read in alphabetical order and their
// contents are concatenated"), which is what makes the 00-local-header /
// 50-skype / 99-local-footer layering of Figure 2 work.
func LoadControlDir(dir string) (*Policy, error) {
	return loadControlFS(os.DirFS(dir), ".")
}

// LoadControlFS is LoadControlDir over an fs.FS, for tests and embedded
// configuration.
func LoadControlFS(fsys fs.FS, dir string) (*Policy, error) {
	return loadControlFS(fsys, dir)
}

func loadControlFS(fsys fs.FS, dir string) (*Policy, error) {
	entries, err := fs.ReadDir(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("pf: reading control dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ControlExt) {
			continue
		}
		names = append(names, e.Name())
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("pf: no %s files in %s", ControlExt, dir)
	}
	sort.Strings(names)
	var files []*File
	for _, name := range names {
		b, err := fs.ReadFile(fsys, filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("pf: reading %s: %w", name, err)
		}
		f, err := Parse(name, string(b))
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return Compile(files...)
}

// LoadSources parses and compiles named sources in the order given; the
// controller uses it when configuration arrives from memory rather than a
// directory (tests, the bench harness, examples).
func LoadSources(sources map[string]string) (*Policy, error) {
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*File
	for _, n := range names {
		f, err := Parse(n, sources[n])
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return Compile(files...)
}
