package pf

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// This file is the lowering pass: Policy (parsed AST + resolved
// definitions) → Program (flat decision program, program.go). Lowering
// runs once per Compile (and once per distinct embedded `allowed` rule
// set, cached); it never fails — references Compile could not validate
// (tables inside embedded rules, macros, dicts) lower to diagnostic
// operations that fail their rule at evaluation time, exactly as the
// interpreter treats them.

// staticFuncs are the built-in predicates whose endpoint reads are fully
// described by their argument lists: they inspect the resolved Values
// (and, for member, a macro body) and nothing else. Any function outside
// this set — `allowed`, operator-registered functions, typos — may
// evaluate embedded rules against the full responses, so the key
// analysis must assume it can read anything.
var staticFuncs = map[string]bool{
	"eq": true, "gt": true, "lt": true, "gte": true, "lte": true,
	"member": true, "includes": true, "verify": true,
}

// lowerCtx carries one lowering pass's state: the policy the rules
// resolve against and whether the static analysis was truncated by the
// allowed-depth cap anywhere beneath this pass. Truncated analyses carry
// key sets valid only for the depth they were computed at, so they are
// never memoized (embeddedEntry) — a shallower call site re-analyzes at
// its own depth.
type lowerCtx struct {
	p         *Policy
	truncated bool
}

// lowerPolicy compiles p's rules into a Program.
func lowerPolicy(p *Policy) *Program {
	pr := &Program{policy: p}
	lc := lowerCtx{p: p}
	pr.rules = lc.lowerRules(p.Rules, 0)

	var srcSets, dstSets [][]string
	for i := range pr.rules {
		srcSets = append(srcSets, pr.rules[i].srcKeys)
		dstSets = append(dstSets, pr.rules[i].dstKeys)
	}
	pr.srcKeysAll = sortedKeyUnion(srcSets...)
	pr.dstKeysAll = sortedKeyUnion(dstSets...)
	pr.refKeys = sortedKeyUnion(pr.srcKeysAll, pr.dstKeysAll)
	pr.maybeHeaderOnly = computeMaybeHeaderOnly(pr.rules)
	return pr
}

// computeMaybeHeaderOnly decides at compile time whether the header-only
// pre-pass can ever succeed: a rule whose header guards match every flow
// and which requires endpoint keys makes every flow undecidable — the
// paper's canonical "block all / pass all with eq(...)" shape — unless an
// earlier unconditional quick rule stops evaluation before it for every
// flow.
func computeMaybeHeaderOnly(rules []progRule) bool {
	for i := range rules {
		r := &rules[i]
		if !universalHeader(r) {
			continue
		}
		if r.needsEndpointKeys() {
			return false
		}
		if r.quick && len(r.calls) == 0 {
			// Matches and stops the scan for every flow: rules past this
			// one are unreachable.
			return true
		}
	}
	return true
}

// universalHeader reports whether the rule's header guards match every
// possible flow.
func universalHeader(r *progRule) bool {
	return r.from.kind == matchAny && !r.from.neg && r.fromPort.IsAny() &&
		r.to.kind == matchAny && !r.to.neg && r.toPort.IsAny()
}

// lowerRules lowers a rule list. depth bounds recursion through the
// static analysis of embedded `allowed` arguments, mirroring the
// evaluator's maxAllowedDepth so a self-referential macro cannot hang
// the compiler.
func (lc *lowerCtx) lowerRules(rules []*Rule, depth int) []progRule {
	out := make([]progRule, len(rules))
	for i, r := range rules {
		out[i] = lc.lowerRule(r, depth)
	}
	return out
}

func (lc *lowerCtx) lowerRule(r *Rule, depth int) progRule {
	p := lc.p
	pr := progRule{
		src:       r,
		action:    r.Action,
		quick:     r.Quick,
		keepState: r.KeepState,
		from:      lowerAddr(p, r.From),
		to:        lowerAddr(p, r.To),
		fromPort:  r.FromPort,
		toPort:    r.ToPort,
	}
	for i := range r.Withs {
		pr.calls = append(pr.calls, lc.lowerCall(&r.Withs[i], &pr, depth))
	}
	sort.Strings(pr.srcKeys)
	sort.Strings(pr.dstKeys)
	return pr
}

// lowerAddr compiles an address expression, resolving table references
// and flattening nested non-negated lists into one term slice. A table
// unresolved here (possible only in embedded rules; Compile validates
// top-level references) lowers to a matcher that diagnoses and fails.
func lowerAddr(p *Policy, a AddrExpr) addrMatcher {
	switch a.Kind {
	case AddrAny:
		return addrMatcher{kind: matchAny, neg: a.Neg}
	case AddrPrefix:
		return addrMatcher{kind: matchPrefix, neg: a.Neg, prefix: a.Prefix}
	case AddrTable:
		set, ok := p.Tables[a.Table]
		if !ok {
			return addrMatcher{kind: matchUndefined, neg: a.Neg, table: a.Table}
		}
		return addrMatcher{kind: matchSet, neg: a.Neg, set: set}
	case AddrList:
		m := addrMatcher{kind: matchList, neg: a.Neg}
		for _, e := range a.List {
			sub := lowerAddr(p, e)
			if sub.kind == matchList && !sub.neg {
				// OR is associative: splice a non-negated nested list's
				// terms directly into this one.
				m.list = append(m.list, sub.list...)
				continue
			}
			m.list = append(m.list, sub)
		}
		return m
	}
	return addrMatcher{kind: matchAny, neg: a.Neg}
}

// lowerCall compiles one `with` predicate and folds its endpoint reads
// into the rule's static key sets.
func (lc *lowerCtx) lowerCall(fc *FuncCall, pr *progRule, depth int) progCall {
	p := lc.p
	call := progCall{name: fc.Name, fc: fc}
	for _, a := range fc.Args {
		call.args = append(call.args, lowerArg(p, a))
		switch a.Kind {
		case ArgDict, ArgDictConcat:
			switch a.Text {
			case "src":
				pr.srcKeys = appendKeyHints(pr.srcKeys, []string{a.Key})
			case "dst":
				pr.dstKeys = appendKeyHints(pr.dstKeys, []string{a.Key})
			}
		}
	}
	// A built-in name the operator has replaced (Register) no longer has
	// the built-in's read behavior — the replacement may EvalEmbedded
	// anything — so it falls through to the conservative bound below.
	if staticFuncs[fc.Name] && !p.funcs.Overridden(fc.Name) {
		return call
	}
	if fc.Name == "allowed" && !p.funcs.Overridden("allowed") {
		lc.analyzeAllowed(fc, pr, depth)
		return call
	}
	// Unknown (possibly operator-registered later) function: it may hand
	// any of its arguments to EvalEmbedded, whose rules can read every
	// key of both responses. Conservative bound.
	pr.srcAll, pr.dstAll = true, true
	return call
}

// analyzeAllowed bounds the key requirements of one `allowed` call. When
// the embedded rules are statically known — a literal argument, a macro,
// or a policy-local dictionary entry — they are parsed, lowered (and
// cached for the evaluator), and their key requirements folded into the
// host rule's. A dynamic argument (@src/@dst) leaves the embedded rules
// unknowable until the responses arrive, so the rule is bounded only by
// "may read anything from either end".
func (lc *lowerCtx) analyzeAllowed(fc *FuncCall, pr *progRule, depth int) {
	p := lc.p
	if len(fc.Args) != 1 {
		return // arity error at eval time; the rule can never match
	}
	a := fc.Args[0]
	var src string
	switch {
	case a.Kind == ArgLiteral:
		src = a.Text
	case a.Kind == ArgMacro:
		v, ok := p.Macros[a.Text]
		if !ok {
			return // undefined macro: diagnostic at eval time, never matches
		}
		src = v
	case a.Kind == ArgDict && a.Text != "src" && a.Text != "dst":
		d, ok := p.Dicts[a.Text]
		if !ok {
			return
		}
		v, ok := d[a.Key]
		if !ok {
			return // absent value fails the predicate; never matches
		}
		src = v
	default:
		pr.srcAll, pr.dstAll = true, true
		return
	}
	src = strings.TrimSpace(src)
	if src == "" {
		return
	}
	if depth >= maxAllowedDepth {
		// At THIS depth the evaluator refuses the nesting too, so the
		// rule cannot match through it and contributes no keys — but the
		// same source analyzed from a shallower call site would descend
		// further, so this pass's results must not be memoized for reuse.
		lc.truncated = true
		return
	}
	entry := p.embeddedEntry("allowed("+a.String()+")", src, depth+1)
	if entry.truncated {
		lc.truncated = true
	}
	if entry.err != nil {
		return // never matches
	}
	for i := range entry.prog {
		er := &entry.prog[i]
		pr.srcKeys = appendKeyHints(pr.srcKeys, er.srcKeys)
		pr.dstKeys = appendKeyHints(pr.dstKeys, er.dstKeys)
		pr.srcAll = pr.srcAll || er.srcAll
		pr.dstAll = pr.dstAll || er.dstAll
	}
}

// lowerArg compiles one argument, pre-resolving everything that does not
// depend on the flow's responses.
func lowerArg(p *Policy, a Arg) progArg {
	switch a.Kind {
	case ArgLiteral:
		return progArg{kind: argConst, val: Value{S: a.Text, Present: true, Arg: a}}
	case ArgMacro:
		v, ok := p.Macros[a.Text]
		if !ok {
			return progArg{
				kind: argDiag,
				val:  Value{Arg: a},
				diag: fmt.Sprintf("undefined macro $%s", a.Text),
			}
		}
		return progArg{kind: argConst, val: Value{S: v, Present: true, Arg: a}}
	case ArgDict, ArgDictConcat:
		switch a.Text {
		case "src":
			if a.Kind == ArgDictConcat {
				return progArg{kind: argSrcConcat, key: a.Key, arg: a}
			}
			return progArg{kind: argSrcKey, key: a.Key, arg: a}
		case "dst":
			if a.Kind == ArgDictConcat {
				return progArg{kind: argDstConcat, key: a.Key, arg: a}
			}
			return progArg{kind: argDstKey, key: a.Key, arg: a}
		}
		d, ok := p.Dicts[a.Text]
		if !ok {
			return progArg{
				kind: argDiag,
				val:  Value{Arg: a},
				diag: fmt.Sprintf("undefined dict <%s>", a.Text),
			}
		}
		v, ok := d[a.Key]
		return progArg{kind: argConst, val: Value{S: v, Present: ok, Arg: a}}
	}
	return progArg{kind: argConst, val: Value{Arg: a}}
}

// maxRuleCacheEntries bounds the embedded-rules memo (Policy.ruleCache).
// `allowed` arguments repeat across flows from the same application, so
// the cache is essential on the hot path — but its keys arrive from the
// network (a `requirements` value is whatever an end-host sends), so an
// unbounded memo is a remotely-fillable memory leak. Past the cap, CLOCK
// eviction reclaims an entry not used since the hand's last sweep, so an
// attacker churning cold keys cannot evict the deployment's hot entries
// (arbitrary map-iteration eviction could, and re-admitting a hot entry
// costs a full parse+lower on the decision path).
const maxRuleCacheEntries = 1024

// allowedEntry is one memoized embedded rule set, in both executable
// forms: the parsed rules for the interpreter and the lowered program
// for the VM. truncated marks an analysis cut short by the depth cap —
// such entries are returned to their caller but never cached, because
// their key sets are only valid for the depth they were computed at.
type allowedEntry struct {
	rules     []*Rule
	prog      []progRule
	err       error
	truncated bool

	// used is the CLOCK reference bit: set on every cache hit, cleared by
	// the sweeping hand, which evicts only entries it finds cleared — i.e.
	// untouched for a full revolution.
	used atomic.Bool
}

// embeddedEntry parses, lowers, and memoizes one embedded rule source.
// depth bounds the static analysis recursion of nested `allowed` calls.
func (p *Policy) embeddedEntry(origin, src string, depth int) *allowedEntry {
	if cached, ok := p.ruleCache.Load(src); ok {
		e := cached.(*allowedEntry)
		e.used.Store(true)
		return e
	}
	rules, err := ParseRules(origin, src)
	e := &allowedEntry{rules: rules, err: err}
	if err == nil {
		lc := lowerCtx{p: p}
		e.prog = lc.lowerRules(rules, depth)
		e.truncated = lc.truncated
	}
	if e.truncated {
		return e // depth-dependent analysis; see allowedEntry
	}
	e.used.Store(true)
	if prev, loaded := p.ruleCache.LoadOrStore(src, e); loaded {
		pe := prev.(*allowedEntry)
		pe.used.Store(true)
		return pe
	}
	p.ruleCacheMu.Lock()
	p.ruleCacheRing = append(p.ruleCacheRing, src)
	p.ruleCacheMu.Unlock()
	if p.ruleCacheN.Add(1) > maxRuleCacheEntries {
		p.evictRuleCacheEntry(src)
	}
	return e
}

// evictRuleCacheEntry reclaims one resident entry other than keep, by
// CLOCK: the hand sweeps the insertion ring, clearing each live entry's
// reference bit and evicting the first it finds already cleared — hot
// entries (referenced since the previous sweep) get a second chance,
// cold ones leave. Slots whose entry is already gone (a Register flush,
// a concurrent evictor) are compacted out in passing. LoadAndDelete
// makes concurrent evictors racing onto the same victim decrement the
// size exactly once per actual removal — a plain Delete would let both
// decrement and the counter would drift under the cap while the map
// grows past it.
func (p *Policy) evictRuleCacheEntry(keep string) {
	p.ruleCacheMu.Lock()
	defer p.ruleCacheMu.Unlock()
	// Two revolutions suffice: the first clears every reference bit, so
	// the second's first live non-keep slot is evictable. The +1 absorbs
	// the keep slot.
	for spins := 2*len(p.ruleCacheRing) + 1; spins > 0 && len(p.ruleCacheRing) > 0; spins-- {
		if p.ruleCacheHand >= len(p.ruleCacheRing) {
			p.ruleCacheHand = 0
		}
		k := p.ruleCacheRing[p.ruleCacheHand]
		v, ok := p.ruleCache.Load(k)
		if !ok {
			// Dangling slot: the entry left by another path. Compact.
			p.ruleCacheRing = append(p.ruleCacheRing[:p.ruleCacheHand], p.ruleCacheRing[p.ruleCacheHand+1:]...)
			continue
		}
		if k == keep || v.(*allowedEntry).used.Swap(false) {
			p.ruleCacheHand++
			continue
		}
		if _, loaded := p.ruleCache.LoadAndDelete(k); loaded {
			p.ruleCacheN.Add(-1)
			p.ruleCacheEvictions.Add(1)
		}
		p.ruleCacheRing = append(p.ruleCacheRing[:p.ruleCacheHand], p.ruleCacheRing[p.ruleCacheHand+1:]...)
		return
	}
}

// RuleCacheStats reports the embedded-rules memo's resident entry count
// and lifetime evictions, for operators watching a churning
// `requirements` source.
func (p *Policy) RuleCacheStats() (entries, evictions int64) {
	return p.ruleCacheN.Load(), p.ruleCacheEvictions.Load()
}

// Program returns the compiled program for p, lowering lazily for
// policies assembled without Compile (tests building Policy values by
// hand). Compile pre-lowers, so the controller never pays this on a
// policy swap.
func (p *Policy) Program() *Program {
	if pr := p.prog.Load(); pr != nil {
		return pr
	}
	p.prog.CompareAndSwap(nil, lowerPolicy(p))
	return p.prog.Load()
}

// differential is the process-wide differential-testing switch: when on,
// every Evaluate runs both the compiled program and the tree-walking
// interpreter and panics on disagreement. The pf test suite (and the
// fuzzers) run with it enabled; production never pays for it beyond one
// atomic load.
var differential atomic.Bool

// SetDifferential toggles differential testing and returns the previous
// setting.
func SetDifferential(on bool) bool { return differential.Swap(on) }
