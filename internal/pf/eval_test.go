package pf

import (
	"strings"
	"testing"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
	"identxx/internal/sig"
	"identxx/internal/wire"
)

// resp builds a single-section response from alternating key, value pairs.
func resp(f flow.Five, kv ...string) *wire.Response {
	r := wire.NewResponse(f)
	for i := 0; i+1 < len(kv); i += 2 {
		r.Add(kv[i], kv[i+1])
	}
	return r
}

func tcp(src string, sp netaddr.Port, dst string, dp netaddr.Port) flow.Five {
	return flow.Five{
		SrcIP:   netaddr.MustParseIP(src),
		DstIP:   netaddr.MustParseIP(dst),
		Proto:   netaddr.ProtoTCP,
		SrcPort: sp,
		DstPort: dp,
	}
}

func TestLastMatchWins(t *testing.T) {
	p := MustCompile("t", `
block all
pass from any to any
`)
	d := p.Evaluate(Input{Flow: tcp("10.0.0.1", 1, "10.0.0.2", 2)})
	if d.Action != Pass || !d.Matched {
		t.Errorf("decision = %+v, want pass (last match wins)", d)
	}
}

func TestQuickShortCircuits(t *testing.T) {
	p := MustCompile("t", `
block quick from any to any
pass from any to any
`)
	d := p.Evaluate(Input{Flow: tcp("10.0.0.1", 1, "10.0.0.2", 2)})
	if d.Action != Block {
		t.Errorf("quick block overridden: %+v", d)
	}
	if d.Rule == nil || !d.Rule.Quick {
		t.Error("deciding rule should be the quick rule")
	}
}

func TestDefaultWhenNoMatch(t *testing.T) {
	p := MustCompile("t", `block from 192.168.0.0/16 to any`)
	d := p.Evaluate(Input{Flow: tcp("10.0.0.1", 1, "10.0.0.2", 2)})
	if d.Matched {
		t.Error("no rule should match")
	}
	if d.Action != Pass {
		t.Error("PF default is pass")
	}
	p.Default = Block
	if got := p.Evaluate(Input{Flow: tcp("10.0.0.1", 1, "10.0.0.2", 2)}); got.Action != Block {
		t.Error("configured default not honored")
	}
}

func TestAddressAndPortMatching(t *testing.T) {
	p := MustCompile("t", `
table <lan> { 192.168.0.0/24 }
block all
pass from <lan> to !<lan> port 443
`)
	in := func(src, dst string, dp netaddr.Port) Decision {
		return p.Evaluate(Input{Flow: tcp(src, 999, dst, dp)})
	}
	if d := in("192.168.0.5", "8.8.8.8", 443); d.Action != Pass {
		t.Errorf("lan->wan:443 = %v, want pass", d.Action)
	}
	if d := in("192.168.0.5", "8.8.8.8", 80); d.Action != Block {
		t.Errorf("lan->wan:80 = %v, want block (port mismatch)", d.Action)
	}
	if d := in("192.168.0.5", "192.168.0.9", 443); d.Action != Block {
		t.Errorf("lan->lan = %v, want block (to !<lan>)", d.Action)
	}
	if d := in("8.8.4.4", "8.8.8.8", 443); d.Action != Block {
		t.Errorf("wan->wan = %v, want block (from <lan>)", d.Action)
	}
}

func TestNestedTables(t *testing.T) {
	p := MustCompile("t", `
table <server> { 192.168.1.1 }
table <lan> { 192.168.0.0/24 }
table <int_hosts> { <lan> <server> }
block all
pass from <int_hosts> to <int_hosts>
`)
	if d := p.Evaluate(Input{Flow: tcp("192.168.0.7", 1, "192.168.1.1", 2)}); d.Action != Pass {
		t.Errorf("nested table member not matched: %v", d)
	}
}

func TestTableCycleRejected(t *testing.T) {
	f, err := Parse("t", `
table <a> { <b> }
table <b> { <a> }
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(f); err == nil || !strings.Contains(err.Error(), "itself") {
		t.Errorf("cycle not rejected: %v", err)
	}
}

func TestUndefinedTableRejectedAtCompile(t *testing.T) {
	f, err := Parse("t", `pass from <nope> to any`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(f); err == nil {
		t.Error("undefined table should fail compile")
	}
}

func TestTablesMergeAcrossFiles(t *testing.T) {
	f1, _ := Parse("a", `table <lan> { 10.0.0.0/24 }`)
	f2, _ := Parse("b", `table <lan> { 10.1.0.0/24 }
block all
pass from <lan> to any`)
	p, err := Compile(f1, f2)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{"10.0.0.5", "10.1.0.5"} {
		if d := p.Evaluate(Input{Flow: tcp(src, 1, "8.8.8.8", 2)}); d.Action != Pass {
			t.Errorf("merged table missing %s", src)
		}
	}
}

func TestWithEq(t *testing.T) {
	p := MustCompile("t", `
block all
pass from any to any with eq(@src[name], skype) with eq(@dst[name], skype)
`)
	f := tcp("10.0.0.1", 1, "10.0.0.2", 2)
	both := Input{Flow: f, Src: resp(f, "name", "skype"), Dst: resp(f, "name", "skype")}
	if d := p.Evaluate(both); d.Action != Pass {
		t.Errorf("skype<->skype = %v, want pass", d.Action)
	}
	oneSided := Input{Flow: f, Src: resp(f, "name", "skype"), Dst: resp(f, "name", "firefox")}
	if d := p.Evaluate(oneSided); d.Action != Block {
		t.Errorf("skype->firefox = %v, want block", d.Action)
	}
	missing := Input{Flow: f, Src: resp(f, "name", "skype")} // no dst response
	if d := p.Evaluate(missing); d.Action != Block {
		t.Errorf("missing dst response = %v, want block (fail closed)", d.Action)
	}
}

func TestNumericComparison(t *testing.T) {
	p := MustCompile("t", `
pass all
block all with lt(@src[version], 200)
`)
	f := tcp("1.1.1.1", 1, "2.2.2.2", 2)
	if d := p.Evaluate(Input{Flow: f, Src: resp(f, "version", "199")}); d.Action != Block {
		t.Error("version 199 should be blocked")
	}
	if d := p.Evaluate(Input{Flow: f, Src: resp(f, "version", "210")}); d.Action != Pass {
		t.Error("version 210 should pass")
	}
	// Numeric, not lexicographic: "1000" > "200".
	if d := p.Evaluate(Input{Flow: f, Src: resp(f, "version", "1000")}); d.Action != Pass {
		t.Error("version 1000 should pass (numeric comparison)")
	}
	// Missing version: lt() is false, so the block rule does not match.
	if d := p.Evaluate(Input{Flow: f, Src: resp(f)}); d.Action != Pass {
		t.Error("missing version should not match lt()")
	}
}

func TestGteLteGt(t *testing.T) {
	p := MustCompile("t", `
block all
pass all with gte(@src[v], 10) with lte(@src[v], 20)
`)
	f := tcp("1.1.1.1", 1, "2.2.2.2", 2)
	for _, c := range []struct {
		v    string
		want Action
	}{{"10", Pass}, {"20", Pass}, {"15", Pass}, {"9", Block}, {"21", Block}} {
		if d := p.Evaluate(Input{Flow: f, Src: resp(f, "v", c.v)}); d.Action != c.want {
			t.Errorf("v=%s: %v, want %v", c.v, d.Action, c.want)
		}
	}
	p2 := MustCompile("t", `block all
pass all with gt(@src[v], 5)`)
	if d := p2.Evaluate(Input{Flow: f, Src: resp(f, "v", "5")}); d.Action != Block {
		t.Error("gt(5,5) should be false")
	}
}

func TestMemberWithMacro(t *testing.T) {
	p := MustCompile("t", `
allowed = "{ http ssh }"
block all
pass from any to any with member(@src[name], $allowed)
`)
	f := tcp("1.1.1.1", 1, "2.2.2.2", 2)
	if d := p.Evaluate(Input{Flow: f, Src: resp(f, "name", "ssh")}); d.Action != Pass {
		t.Error("ssh should be a member of $allowed")
	}
	if d := p.Evaluate(Input{Flow: f, Src: resp(f, "name", "skype")}); d.Action != Block {
		t.Error("skype should not be a member of $allowed")
	}
}

func TestMemberBareNameResolvesMacro(t *testing.T) {
	// member(@src[groupID], users): a bare name that resolves to a macro.
	p := MustCompile("t", `
users = "{ alice bob }"
block all
pass from any to any with member(@src[userID], users)
`)
	f := tcp("1.1.1.1", 1, "2.2.2.2", 2)
	if d := p.Evaluate(Input{Flow: f, Src: resp(f, "userID", "alice")}); d.Action != Pass {
		t.Error("alice should match macro-resolved set")
	}
	if d := p.Evaluate(Input{Flow: f, Src: resp(f, "userID", "mallory")}); d.Action != Block {
		t.Error("mallory should not match")
	}
}

func TestMemberLiteralGroupAndMultiValue(t *testing.T) {
	// Without a macro, the bare name is a singleton set; the first argument
	// may be multi-valued (user in several groups).
	p := MustCompile("t", `
block all
pass from any to any with member(@src[groupID], research)
`)
	f := tcp("1.1.1.1", 1, "2.2.2.2", 2)
	if d := p.Evaluate(Input{Flow: f, Src: resp(f, "groupID", "staff research admins")}); d.Action != Pass {
		t.Error("multi-valued groupID should intersect {research}")
	}
	if d := p.Evaluate(Input{Flow: f, Src: resp(f, "groupID", "staff")}); d.Action != Block {
		t.Error("staff-only should not match research")
	}
}

func TestIncludes(t *testing.T) {
	p := MustCompile("t", `
block all
pass from any to any with includes(@dst[os-patch], MS08-067)
`)
	f := tcp("1.1.1.1", 1, "2.2.2.2", 2)
	if d := p.Evaluate(Input{Flow: f, Dst: resp(f, "os-patch", "MS08-001 MS08-067 MS09-001")}); d.Action != Pass {
		t.Error("patched host should pass")
	}
	if d := p.Evaluate(Input{Flow: f, Dst: resp(f, "os-patch", "MS08-001")}); d.Action != Block {
		t.Error("unpatched host should be blocked")
	}
	// Substring is not membership: MS08-0671 does not include MS08-067.
	if d := p.Evaluate(Input{Flow: f, Dst: resp(f, "os-patch", "MS08-0671")}); d.Action != Block {
		t.Error("token membership must be exact")
	}
}

func TestAllowedEvaluatesEmbeddedRules(t *testing.T) {
	p := MustCompile("t", `
block all
pass from any to any with allowed(@dst[requirements])
`)
	f := tcp("1.1.1.1", 1, "2.2.2.2", 80)
	req := "block all pass from any to any port 80"
	if d := p.Evaluate(Input{Flow: f, Dst: resp(f, "requirements", req)}); d.Action != Pass {
		t.Errorf("requirements admitting :80 should pass: %+v", d)
	}
	f2 := tcp("1.1.1.1", 1, "2.2.2.2", 22)
	if d := p.Evaluate(Input{Flow: f2, Dst: resp(f2, "requirements", req)}); d.Action != Block {
		t.Error("requirements not admitting :22 should block")
	}
	// Embedded rules are default-deny: empty/no-match requirements fail.
	if d := p.Evaluate(Input{Flow: f, Dst: resp(f, "requirements", "pass from 9.9.9.9 to any")}); d.Action != Block {
		t.Error("non-matching requirements should fail closed")
	}
	// Missing requirements key fails closed.
	if d := p.Evaluate(Input{Flow: f, Dst: resp(f)}); d.Action != Block {
		t.Error("missing requirements should fail closed")
	}
}

func TestAllowedEmbeddedWithClauses(t *testing.T) {
	// Figure 4: research apps may only talk to research apps.
	p := MustCompile("t", `
block all
pass from any to any with allowed(@src[requirements])
`)
	f := tcp("1.1.1.1", 1, "2.2.2.2", 2)
	req := "block all pass all with eq(@src[name], research-app) with eq(@dst[name], research-app)"
	in := Input{
		Flow: f,
		Src:  resp(f, "name", "research-app", "requirements", req),
		Dst:  resp(f, "name", "research-app"),
	}
	if d := p.Evaluate(in); d.Action != Pass {
		t.Errorf("research-app<->research-app should pass: %+v", d)
	}
	in.Dst = resp(f, "name", "database")
	if d := p.Evaluate(in); d.Action != Block {
		t.Error("research-app->database should block")
	}
}

func TestAllowedRejectsDefinitionsAndRecursion(t *testing.T) {
	p := MustCompile("t", `
block all
pass from any to any with allowed(@src[requirements])
`)
	f := tcp("1.1.1.1", 1, "2.2.2.2", 2)
	// Definition smuggling is rejected (diagnostic, rule fails).
	d := p.Evaluate(Input{Flow: f, Src: resp(f, "requirements", "table <x> { 1.2.3.4 } pass all")})
	if d.Action != Block {
		t.Error("definition smuggling should fail closed")
	}
	if len(d.Diags) == 0 {
		t.Error("expected a diagnostic for rejected requirements")
	}
	// Self-referential allowed() bottoms out at the depth limit.
	d2 := p.Evaluate(Input{Flow: f, Src: resp(f, "requirements", "pass all with allowed(@src[requirements])")})
	if d2.Action != Block {
		t.Error("recursive requirements should fail closed")
	}
	if len(d2.Diags) == 0 {
		t.Error("expected a recursion diagnostic")
	}
}

func TestVerify(t *testing.T) {
	pub, priv := sig.MustGenerateKey()
	reqs := "block all pass all with eq(@src[name], research-app)"
	hash := "abc123"
	good := sig.Sign(priv, hash, "research-app", reqs)

	f1, _ := Parse("defs", `dict <pubkeys> { research : `+pub.String()+` }`)
	f2, _ := Parse("rules", `
block all
pass from any to any \
    with verify(@src[req-sig], @pubkeys[research], @src[exe-hash], @src[app-name], @src[requirements])
`)
	p, err := Compile(f1, f2)
	if err != nil {
		t.Fatal(err)
	}
	f := tcp("1.1.1.1", 1, "2.2.2.2", 2)
	in := Input{Flow: f, Src: resp(f,
		"req-sig", good, "exe-hash", hash, "app-name", "research-app", "requirements", reqs)}
	if d := p.Evaluate(in); d.Action != Pass {
		t.Errorf("valid signature should pass: %+v", d)
	}
	// Tampered requirements: signature no longer covers the value.
	in.Src = resp(f, "req-sig", good, "exe-hash", hash, "app-name", "research-app",
		"requirements", "pass all")
	if d := p.Evaluate(in); d.Action != Block {
		t.Error("tampered requirements must fail verify")
	}
	// Wrong signer key in dict.
	otherPub, _ := sig.MustGenerateKey()
	f1b, _ := Parse("defs", `dict <pubkeys> { research : `+otherPub.String()+` }`)
	p2, _ := Compile(f1b, f2)
	in.Src = resp(f, "req-sig", good, "exe-hash", hash, "app-name", "research-app", "requirements", reqs)
	if d := p2.Evaluate(in); d.Action != Block {
		t.Error("signature under wrong key must fail")
	}
	// Missing req-sig fails closed without diagnostics noise.
	in.Src = resp(f, "exe-hash", hash, "app-name", "research-app", "requirements", reqs)
	if d := p.Evaluate(in); d.Action != Block {
		t.Error("missing signature must fail closed")
	}
}

func TestStarConcatAccessor(t *testing.T) {
	p := MustCompile("t", `
block all
pass from any to any with eq(*@src[netpath], "branchA,branchB")
`)
	f := tcp("1.1.1.1", 1, "2.2.2.2", 2)
	r := wire.NewResponse(f)
	r.Add("netpath", "branchA")
	r.Augment("controllerB").Add("netpath", "branchB")
	if d := p.Evaluate(Input{Flow: f, Src: r}); d.Action != Pass {
		t.Errorf("endorsement chain should match: %+v", d)
	}
	// A single-section response does not present the full chain.
	r2 := wire.NewResponse(f)
	r2.Add("netpath", "branchA")
	if d := p.Evaluate(Input{Flow: f, Src: r2}); d.Action != Block {
		t.Error("incomplete chain should not match")
	}
}

func TestLatestSectionWinsInEval(t *testing.T) {
	// A downstream controller overrides a host-supplied value; plain
	// indexing must see the override (§3.3 "latest value is the most
	// trusted").
	p := MustCompile("t", `
block all
pass from any to any with eq(@src[userID], verified-alice)
`)
	f := tcp("1.1.1.1", 1, "2.2.2.2", 2)
	r := wire.NewResponse(f)
	r.Add("userID", "alice")
	r.Augment("edge-controller").Add("userID", "verified-alice")
	if d := p.Evaluate(Input{Flow: f, Src: r}); d.Action != Pass {
		t.Error("latest section value should win")
	}
}

func TestUnknownFunctionDiagnostic(t *testing.T) {
	p := MustCompile("t", `
pass all
block all with frob(@src[x])
`)
	f := tcp("1.1.1.1", 1, "2.2.2.2", 2)
	d := p.Evaluate(Input{Flow: f, Src: resp(f, "x", "1")})
	if d.Action != Pass {
		t.Error("rule with unknown function must not match")
	}
	if len(d.Diags) == 0 || !strings.Contains(d.Diags[0], "frob") {
		t.Errorf("diags = %v", d.Diags)
	}
}

func TestRegisterCustomFunction(t *testing.T) {
	p := MustCompile("t", `
block all
pass from any to any with even(@src[pid])
`)
	p.Register("even", func(_ *Ctx, args []Value) (bool, error) {
		if len(args) != 1 || !args[0].Present {
			return false, nil
		}
		return len(args[0].S) > 0 && (args[0].S[len(args[0].S)-1]-'0')%2 == 0, nil
	})
	f := tcp("1.1.1.1", 1, "2.2.2.2", 2)
	if d := p.Evaluate(Input{Flow: f, Src: resp(f, "pid", "42")}); d.Action != Pass {
		t.Error("custom function should pass pid 42")
	}
	if d := p.Evaluate(Input{Flow: f, Src: resp(f, "pid", "43")}); d.Action != Block {
		t.Error("custom function should fail pid 43")
	}
}

func TestArityErrorsAreDiagnostics(t *testing.T) {
	p := MustCompile("t", `
pass all
block all with eq(@src[x])
`)
	f := tcp("1.1.1.1", 1, "2.2.2.2", 2)
	d := p.Evaluate(Input{Flow: f, Src: resp(f, "x", "1")})
	if d.Action != Pass || len(d.Diags) == 0 {
		t.Errorf("arity error should be a diagnostic: %+v", d)
	}
}

func TestUndefinedDictAndMacroDiagnostics(t *testing.T) {
	p := MustCompile("t", `
pass all
block all with eq(@nosuch[k], x)
block all with member(@src[g], $nosuch)
`)
	f := tcp("1.1.1.1", 1, "2.2.2.2", 2)
	d := p.Evaluate(Input{Flow: f, Src: resp(f, "g", "x")})
	if d.Action != Pass {
		t.Error("rules with undefined references must not match")
	}
	joined := strings.Join(d.Diags, "\n")
	if !strings.Contains(joined, "nosuch") {
		t.Errorf("diags = %v", d.Diags)
	}
}

func TestKeepStatePropagates(t *testing.T) {
	p := MustCompile("t", `
block all
pass from any to any keep state
`)
	d := p.Evaluate(Input{Flow: tcp("1.1.1.1", 1, "2.2.2.2", 2)})
	if !d.KeepState {
		t.Error("KeepState not propagated to decision")
	}
}

func TestFigure2FullMatrix(t *testing.T) {
	// The complete Figure 2 configuration evaluated over the scenarios the
	// paper's prose describes.
	files := map[string]string{
		"00-local-header.control": `
table <server> { 192.168.1.1 }
table <lan> { 192.168.0.0/24 }
table <int_hosts> { <lan> <server> }
allowed = "{ http ssh }"
block all
pass from <int_hosts> to !<int_hosts> keep state
pass from <int_hosts> to <int_hosts> with member(@src[name], $allowed) keep state
`,
		"50-skype.control": `
table <skype_update> { 123.123.123.0/24 }
pass all with eq(@src[name], skype) with eq(@dst[name], skype)
pass from any to <skype_update> port 80 with eq(@src[name], skype) keep state
`,
		"99-local-footer.control": `
block all with eq(@src[name], skype) with lt(@src[version], 200)
block from any to <server> with eq(@src[name], skype)
`,
	}
	p, err := LoadSources(files)
	if err != nil {
		t.Fatal(err)
	}
	p.Default = Block

	type scenario struct {
		desc  string
		flow  flow.Five
		srcKV []string
		dstKV []string
		want  Action
	}
	lanA, lanB, server := "192.168.0.10", "192.168.0.20", "192.168.1.1"
	scenarios := []scenario{
		{"skype to skype inside", tcp(lanA, 5060, lanB, 5060),
			[]string{"name", "skype", "version", "210"}, []string{"name", "skype"}, Pass},
		{"old skype blocked by footer", tcp(lanA, 5060, lanB, 5060),
			[]string{"name", "skype", "version", "150"}, []string{"name", "skype"}, Block},
		{"skype to server blocked by footer", tcp(lanA, 5060, server, 80),
			[]string{"name", "skype", "version", "210"}, []string{"name", "skype"}, Block},
		{"skype update over port 80", tcp(lanA, 40000, "123.123.123.7", 80),
			[]string{"name", "skype", "version", "210"}, nil, Pass},
		{"approved app http inside", tcp(lanA, 40000, server, 80),
			[]string{"name", "http"}, nil, Pass},
		{"unapproved app inside", tcp(lanA, 40000, server, 80),
			[]string{"name", "dropbox"}, nil, Block},
		{"outbound to internet", tcp(lanA, 40000, "8.8.8.8", 443),
			[]string{"name", "firefox"}, nil, Pass},
		{"inbound from internet", tcp("8.8.8.8", 40000, lanA, 22),
			nil, []string{"name", "sshd"}, Block},
	}
	for _, s := range scenarios {
		in := Input{Flow: s.flow}
		if s.srcKV != nil {
			in.Src = resp(s.flow, s.srcKV...)
		}
		if s.dstKV != nil {
			in.Dst = resp(s.flow, s.dstKV...)
		}
		d := p.Evaluate(in)
		if d.Action != s.want {
			t.Errorf("%s: got %v, want %v (rule=%v diags=%v)", s.desc, d.Action, s.want, d.Rule, d.Diags)
		}
	}
}

func TestEvaluateConcurrent(t *testing.T) {
	p := MustCompile("t", `
block all
pass from any to any with allowed(@src[requirements])
`)
	f := tcp("1.1.1.1", 1, "2.2.2.2", 80)
	in := Input{Flow: f, Src: resp(f, "requirements", "block all pass from any to any port 80")}
	done := make(chan bool, 8)
	for g := 0; g < 8; g++ {
		go func() {
			ok := true
			for i := 0; i < 200; i++ {
				if d := p.Evaluate(in); d.Action != Pass {
					ok = false
				}
			}
			done <- ok
		}()
	}
	for g := 0; g < 8; g++ {
		if !<-done {
			t.Fatal("concurrent evaluation returned wrong decision")
		}
	}
}

func BenchmarkEvaluateSimple(b *testing.B) {
	p := MustCompile("t", `
table <lan> { 192.168.0.0/24 }
block all
pass from <lan> to !<lan> keep state
`)
	in := Input{Flow: tcp("192.168.0.5", 999, "8.8.8.8", 443)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if d := p.Evaluate(in); d.Action != Pass {
			b.Fatal("wrong decision")
		}
	}
}

func BenchmarkEvaluateWithPredicates(b *testing.B) {
	p := MustCompile("t", `
block all
pass from any to any with eq(@src[name], skype) with eq(@dst[name], skype)
`)
	f := tcp("10.0.0.1", 1, "10.0.0.2", 2)
	in := Input{Flow: f, Src: resp(f, "name", "skype"), Dst: resp(f, "name", "skype")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if d := p.Evaluate(in); d.Action != Pass {
			b.Fatal("wrong decision")
		}
	}
}

func BenchmarkEvaluateAllowedCached(b *testing.B) {
	p := MustCompile("t", `
block all
pass from any to any with allowed(@src[requirements])
`)
	f := tcp("10.0.0.1", 1, "10.0.0.2", 80)
	in := Input{Flow: f, Src: resp(f, "requirements", "block all pass from any to any port 80")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if d := p.Evaluate(in); d.Action != Pass {
			b.Fatal("wrong decision")
		}
	}
}
