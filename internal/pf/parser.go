package pf

import (
	"fmt"

	"identxx/internal/netaddr"
)

// Parse parses a PF+=2 source unit. file names the source for diagnostics.
func Parse(file, src string) (*File, error) {
	toks, err := lexAll(file, src)
	if err != nil {
		return nil, err
	}
	p := &parser{file: file, toks: toks}
	return p.parseFile()
}

// ParseRules parses rule-only source, as carried in ident++ `requirements`
// values (Figure 3/4/6): definitions are rejected so that externally
// supplied rules cannot shadow the administrator's tables or macros.
func ParseRules(origin, src string) ([]*Rule, error) {
	f, err := Parse(origin, src)
	if err != nil {
		return nil, err
	}
	for _, s := range f.Stmts {
		if _, ok := s.(*Rule); !ok {
			return nil, fmt.Errorf("%s: definitions not allowed in embedded rules (%s)", origin, s)
		}
	}
	return f.Rules(), nil
}

type parser struct {
	file string
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) peek() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errorf(t token, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", p.file, t.line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(kind tokKind) (token, error) {
	t := p.cur()
	if t.kind != kind {
		return t, p.errorf(t, "expected %s, found %s %q", kind, t.kind, t.text)
	}
	return p.advance(), nil
}

func (p *parser) parseFile() (*File, error) {
	f := &File{}
	for p.cur().kind != tokEOF {
		t := p.cur()
		switch {
		case t.kind == tokWord && t.text == "table":
			st, err := p.parseTableDef()
			if err != nil {
				return nil, err
			}
			f.Stmts = append(f.Stmts, st)
		case t.kind == tokWord && t.text == "dict":
			st, err := p.parseDictDef()
			if err != nil {
				return nil, err
			}
			f.Stmts = append(f.Stmts, st)
		case t.kind == tokWord && (t.text == "pass" || t.text == "block"):
			st, err := p.parseRule()
			if err != nil {
				return nil, err
			}
			f.Stmts = append(f.Stmts, st)
		case t.kind == tokWord && p.peek().kind == tokAssign:
			st, err := p.parseMacroDef()
			if err != nil {
				return nil, err
			}
			f.Stmts = append(f.Stmts, st)
		default:
			return nil, p.errorf(t, "expected statement, found %s %q", t.kind, t.text)
		}
	}
	return f, nil
}

func (p *parser) parseTableDef() (*TableDef, error) {
	kw := p.advance() // "table"
	name, err := p.expect(tokTable)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	def := &TableDef{Name: name.text, Pos: Pos{p.file, kw.line}}
	for p.cur().kind != tokRBrace {
		t := p.cur()
		switch t.kind {
		case tokTable:
			p.advance()
			def.Elems = append(def.Elems, TableElem{Ref: t.text})
		case tokWord:
			p.advance()
			pref, err := netaddr.ParsePrefix(t.text)
			if err != nil {
				return nil, p.errorf(t, "bad address %q in table <%s>", t.text, def.Name)
			}
			def.Elems = append(def.Elems, TableElem{Prefix: pref})
		case tokComma:
			p.advance() // PF permits comma separators in lists
		case tokEOF:
			return nil, p.errorf(t, "unterminated table <%s>", def.Name)
		default:
			return nil, p.errorf(t, "unexpected %s in table <%s>", t.kind, def.Name)
		}
	}
	p.advance() // '}'
	return def, nil
}

func (p *parser) parseDictDef() (*DictDef, error) {
	kw := p.advance() // "dict"
	name, err := p.expect(tokTable)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	def := &DictDef{Name: name.text, Pairs: make(map[string]string), Pos: Pos{p.file, kw.line}}
	for p.cur().kind != tokRBrace {
		if p.cur().kind == tokComma {
			p.advance()
			continue
		}
		if p.cur().kind == tokEOF {
			return nil, p.errorf(p.cur(), "unterminated dict <%s>", def.Name)
		}
		k, err := p.expect(tokWord)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		v := p.cur()
		if v.kind != tokWord && v.kind != tokString {
			return nil, p.errorf(v, "expected value after %q in dict <%s>", k.text, def.Name)
		}
		p.advance()
		if _, dup := def.Pairs[k.text]; !dup {
			def.Keys = append(def.Keys, k.text)
		}
		def.Pairs[k.text] = v.text
	}
	p.advance() // '}'
	return def, nil
}

func (p *parser) parseMacroDef() (*MacroDef, error) {
	name := p.advance()
	p.advance() // '='
	v := p.cur()
	if v.kind != tokString && v.kind != tokWord {
		return nil, p.errorf(v, "expected macro value after %s =", name.text)
	}
	p.advance()
	return &MacroDef{Name: name.text, Value: v.text, Pos: Pos{p.file, name.line}}, nil
}

// parseRule parses one pass/block rule. Clauses (`quick`, `all`,
// `from ... [port ...]`, `to ... [port ...]`, `with f(...)`, `keep state`)
// may appear in any order — the paper interleaves `with` between `from`
// and `to` (Figure 2) and after `to` (Figure 7).
func (p *parser) parseRule() (*Rule, error) {
	kw := p.advance()
	r := &Rule{
		From: AnyAddr(),
		To:   AnyAddr(),
		Pos:  Pos{p.file, kw.line},
	}
	if kw.text == "pass" {
		r.Action = Pass
	}
	sawFrom, sawTo, sawAll := false, false, false
	for {
		t := p.cur()
		if t.kind != tokWord {
			break
		}
		switch t.text {
		case "quick":
			p.advance()
			r.Quick = true
		case "all":
			if sawFrom || sawTo {
				return nil, p.errorf(t, "'all' cannot be combined with from/to")
			}
			p.advance()
			sawAll = true
		case "from":
			if sawAll {
				return nil, p.errorf(t, "'from' cannot follow 'all'")
			}
			if sawFrom {
				return nil, p.errorf(t, "duplicate 'from'")
			}
			p.advance()
			addr, err := p.parseAddrExpr()
			if err != nil {
				return nil, err
			}
			r.From = addr
			sawFrom = true
			if pe, ok, err := p.maybeParsePort(); err != nil {
				return nil, err
			} else if ok {
				r.FromPort = pe
			}
		case "to":
			if sawAll {
				return nil, p.errorf(t, "'to' cannot follow 'all'")
			}
			if sawTo {
				return nil, p.errorf(t, "duplicate 'to'")
			}
			p.advance()
			addr, err := p.parseAddrExpr()
			if err != nil {
				return nil, err
			}
			r.To = addr
			sawTo = true
			if pe, ok, err := p.maybeParsePort(); err != nil {
				return nil, err
			} else if ok {
				r.ToPort = pe
			}
		case "with":
			p.advance()
			fc, err := p.parseFuncCall()
			if err != nil {
				return nil, err
			}
			r.Withs = append(r.Withs, fc)
		case "keep":
			p.advance()
			st := p.cur()
			if st.kind != tokWord || st.text != "state" {
				return nil, p.errorf(st, "expected 'state' after 'keep'")
			}
			p.advance()
			r.KeepState = true
		case "log":
			// The paper notes "We do not currently use the log action" but
			// vanilla PF rules carry it; accept and ignore for compatibility.
			p.advance()
		default:
			// Start of the next statement.
			return r, nil
		}
	}
	return r, nil
}

func (p *parser) parseAddrExpr() (AddrExpr, error) {
	var a AddrExpr
	if p.cur().kind == tokBang {
		p.advance()
		a.Neg = true
	}
	t := p.cur()
	switch t.kind {
	case tokWord:
		if t.text == "any" {
			p.advance()
			a.Kind = AddrAny
			return a, nil
		}
		pref, err := netaddr.ParsePrefix(t.text)
		if err != nil {
			return a, p.errorf(t, "bad address %q", t.text)
		}
		p.advance()
		a.Kind = AddrPrefix
		a.Prefix = pref
		return a, nil
	case tokTable:
		p.advance()
		a.Kind = AddrTable
		a.Table = t.text
		return a, nil
	case tokLBrace:
		p.advance()
		a.Kind = AddrList
		for p.cur().kind != tokRBrace {
			if p.cur().kind == tokComma {
				p.advance()
				continue
			}
			if p.cur().kind == tokEOF {
				return a, p.errorf(p.cur(), "unterminated address list")
			}
			elem, err := p.parseAddrExpr()
			if err != nil {
				return a, err
			}
			a.List = append(a.List, elem)
		}
		p.advance()
		return a, nil
	}
	return a, p.errorf(t, "expected address, table, 'any', or list; found %s", t.kind)
}

// maybeParsePort consumes `port <spec>` if present.
func (p *parser) maybeParsePort() (PortExpr, bool, error) {
	t := p.cur()
	if t.kind != tokWord || t.text != "port" {
		return PortExpr{}, false, nil
	}
	p.advance()
	var pe PortExpr
	spec := p.cur()
	switch spec.kind {
	case tokWord:
		p.advance()
		r, err := netaddr.ParsePortRange(spec.text)
		if err != nil {
			return pe, false, p.errorf(spec, "bad port %q", spec.text)
		}
		pe.Ranges = append(pe.Ranges, r)
	case tokLBrace:
		p.advance()
		for p.cur().kind != tokRBrace {
			if p.cur().kind == tokComma {
				p.advance()
				continue
			}
			w, err := p.expect(tokWord)
			if err != nil {
				return pe, false, err
			}
			r, err := netaddr.ParsePortRange(w.text)
			if err != nil {
				return pe, false, p.errorf(w, "bad port %q", w.text)
			}
			pe.Ranges = append(pe.Ranges, r)
		}
		p.advance()
	default:
		return pe, false, p.errorf(spec, "expected port after 'port'")
	}
	return pe, true, nil
}

func (p *parser) parseFuncCall() (FuncCall, error) {
	name, err := p.expect(tokWord)
	if err != nil {
		return FuncCall{}, err
	}
	fc := FuncCall{Name: name.text, Pos: Pos{p.file, name.line}}
	if _, err := p.expect(tokLParen); err != nil {
		return fc, err
	}
	for p.cur().kind != tokRParen {
		if p.cur().kind == tokComma {
			p.advance()
			continue
		}
		if p.cur().kind == tokEOF {
			return fc, p.errorf(p.cur(), "unterminated call to %s", fc.Name)
		}
		arg, err := p.parseArg()
		if err != nil {
			return fc, err
		}
		fc.Args = append(fc.Args, arg)
	}
	p.advance() // ')'
	return fc, nil
}

func (p *parser) parseArg() (Arg, error) {
	t := p.cur()
	switch t.kind {
	case tokWord, tokString:
		p.advance()
		return Arg{Kind: ArgLiteral, Text: t.text}, nil
	case tokMacro:
		p.advance()
		return Arg{Kind: ArgMacro, Text: t.text}, nil
	case tokAt, tokStarAt:
		p.advance()
		if _, err := p.expect(tokLBracket); err != nil {
			return Arg{}, err
		}
		key, err := p.expect(tokWord)
		if err != nil {
			return Arg{}, err
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return Arg{}, err
		}
		kind := ArgDict
		if t.kind == tokStarAt {
			kind = ArgDictConcat
		}
		return Arg{Kind: kind, Text: t.text, Key: key.text}, nil
	case tokTable:
		// A table used as a set argument, e.g. member(@src[host], <lan>)
		// is not in the paper; reserve the syntax with a clear error.
		return Arg{}, p.errorf(t, "table references are not valid function arguments")
	}
	return Arg{}, p.errorf(t, "expected argument, found %s", t.kind)
}
