package pf

import (
	"testing"

	"identxx/internal/netaddr"
)

// These tests pin the field-use trace EvaluateTraced reports — the mask
// the controller's megaflow layer widens verdicts by. A trace that
// over-approximates costs cache efficiency; one that under-approximates
// applies a verdict to flows the policy would have decided differently,
// so every case here is a soundness fence.

func TestTraceMaskDerivation(t *testing.T) {
	cases := []struct {
		name    string
		policy  string
		src     []string // kv pairs for the src response
		dst     []string
		fields  uint8
		srcRead bool
		dstRead bool
	}{
		{
			// Constant-outcome guards (any/any) examine nothing: every
			// flow takes the same path, so the class is all of traffic.
			name:   "block all examines nothing",
			policy: "block all",
			fields: 0,
		},
		{
			// A prefix guard examines exactly the address it constrains.
			name:   "src prefix pins SrcIP only",
			policy: "block all\npass from 10.0.0.0/8 to any",
			fields: TraceSrcIP,
		},
		{
			// A port range examines its port; `port any` would not.
			name:   "dst port guard pins DstPort",
			policy: "block all\npass from any to any port 443",
			fields: TraceDstPort,
		},
		{
			// Reading a key from an end pins that end's full addressing:
			// the daemon's answer is a function of who was asked.
			name:    "dst key read pins the dst end",
			policy:  "block all\npass from any to any port 5060 with eq(@dst[name], skype)",
			dst:     []string{"name", "skype"},
			fields:  TraceDstIP | TraceDstPort,
			dstRead: true,
		},
		{
			// Both ends read: the class degenerates to the single flow.
			name:    "both-end reads cover all fields",
			policy:  "block all\npass from any to any with eq(@src[name], skype) with eq(@dst[name], skype)",
			src:     []string{"name", "skype"},
			dst:     []string{"name", "skype"},
			fields:  TraceAllFields,
			srcRead: true,
			dstRead: true,
		},
		{
			// Embedded rules trace into their caller: the src key read
			// pins the src end, and the embedded program's dst port guard
			// surfaces in the outer trace.
			name:    "embedded rules merge their trace",
			policy:  "block all\npass from any to any with allowed(@src[requirements])",
			src:     []string{"requirements", "block all pass from any to any port 80"},
			fields:  TraceSrcIP | TraceSrcPort | TraceDstPort,
			srcRead: true,
		},
	}
	f := tcp("10.1.2.3", 40000, "192.168.0.9", 80)
	f.DstPort = 5060
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := MustCompile("t", tc.policy)
			flw := f
			if tc.fields&TraceDstPort != 0 && tc.policy == cases[2].policy {
				flw.DstPort = 443
			}
			in := Input{Flow: flw}
			if len(tc.src) > 0 {
				in.Src = resp(flw, tc.src...)
			}
			if len(tc.dst) > 0 {
				in.Dst = resp(flw, tc.dst...)
			}
			d, tr := p.EvaluateTraced(in)
			if tr.Fields != tc.fields {
				t.Errorf("Fields = %04b, want %04b", tr.Fields, tc.fields)
			}
			if tr.SrcRead != tc.srcRead || tr.DstRead != tc.dstRead {
				t.Errorf("SrcRead/DstRead = %v/%v, want %v/%v", tr.SrcRead, tr.DstRead, tc.srcRead, tc.dstRead)
			}
			if plain := p.Evaluate(in); plain.Action != d.Action || plain.Matched != d.Matched {
				t.Errorf("traced decision %v/%v != plain %v/%v", d.Action, d.Matched, plain.Action, plain.Matched)
			}
		})
	}
}

// TestTraceMaskZeroesUntracedFields: the mask keeps exactly the traced
// fields (plus the protocol, which is always part of the class key) and
// zeroes the rest.
func TestTraceMaskZeroesUntracedFields(t *testing.T) {
	f := tcp("10.1.2.3", 40000, "192.168.0.9", 5060)
	m := Trace{Fields: TraceDstIP | TraceDstPort}.Mask(f)
	if m.SrcIP != 0 || m.SrcPort != 0 {
		t.Errorf("untraced src fields survived the mask: %+v", m)
	}
	if m.DstIP != f.DstIP || m.DstPort != f.DstPort || m.Proto != f.Proto {
		t.Errorf("traced fields (or proto) lost: %+v", m)
	}
	if all := (Trace{Fields: TraceAllFields}).Mask(f); all != f {
		t.Errorf("full mask should be identity: %+v", all)
	}
}

// TestTraceWideningSoundness is the property the megaflow cache rests on:
// two flows agreeing on the traced fields get identical verdicts.
func TestTraceWideningSoundness(t *testing.T) {
	p := MustCompile("t", "block all\npass from any to any port 5060 with eq(@dst[name], skype)")
	founder := tcp("10.1.2.3", 40000, "192.168.0.9", 5060)
	d, tr := p.EvaluateTraced(Input{Flow: founder, Dst: resp(founder, "name", "skype")})
	if d.Action != Pass {
		t.Fatalf("founder = %v, want pass", d.Action)
	}
	if tr.CoversAllFields() {
		t.Fatal("founder trace covers all fields; nothing to widen")
	}
	for _, member := range []struct {
		src string
		sp  netaddr.Port
	}{
		{"10.1.2.3", 40001},
		{"172.16.0.1", 1},
		{"10.99.99.99", 65535},
	} {
		f2 := tcp(member.src, member.sp, "192.168.0.9", 5060)
		if tr.Mask(f2) != tr.Mask(founder) {
			t.Fatalf("member %s:%d not in founder's class", member.src, member.sp)
		}
		d2 := p.Evaluate(Input{Flow: f2, Dst: resp(f2, "name", "skype")})
		if d2.Action != d.Action || d2.Matched != d.Matched {
			t.Errorf("member %s:%d verdict %v != founder %v", member.src, member.sp, d2.Action, d.Action)
		}
	}
}
