package pf

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"identxx/internal/flow"
	"identxx/internal/netaddr"
)

// This file defines the compiled form of a policy: a flat, first-class
// decision program the VM (vm.go) executes instead of walking the parsed
// AST per decision. Compile lowers the ordered rule list once per
// SetPolicy — the way real packet filters (BPF, pf, iptables) compile
// their rulesets — so the per-decision cost is a linear scan over
// pre-resolved matchers:
//
//   - table references are resolved to *netaddr.IPSet pointers,
//   - address lists are flattened (nested non-negated lists collapse),
//   - CIDR prefixes and port ranges are the parsed value types,
//   - macro and local-dict arguments are interned as constant Values,
//   - every rule carries its static key-requirement set: which @src/@dst
//     keys the rule can actually read, including the keys inside
//     statically-known embedded `allowed` rules, with a conservative
//     "may read anything" bound for dynamic ones.
//
// The key sets power two controller-side optimizations (§3.2's "list of
// keys that the controller is interested in"): per-flow key hints (ask a
// daemon only for keys a still-matching rule could read) and the
// header-only pre-pass (if no rule that could match a flow reads any
// endpoint key, decide from the header alone and query nothing).
//
// The definition maps of a Policy (Tables, Dicts, Macros) must not be
// mutated after Compile: the program pre-resolves against them. Default
// and Register remain live — the VM reads Policy.Default per evaluation
// and looks functions up per call, exactly as the interpreter does.

// Program is the compiled, flat form of a Policy's ruleset.
type Program struct {
	policy *Policy
	rules  []progRule

	// srcKeysAll/dstKeysAll are the sorted unions of every rule's static
	// key set for that end; the hint fallback when a rule's requirements
	// are not statically bounded. refKeys is their union — the policy's
	// ReferencedKeys.
	srcKeysAll, dstKeysAll []string
	refKeys                []string

	// maybeHeaderOnly gates the per-flow pre-pass: false when some rule
	// with universal header guards requires endpoint keys, in which case
	// no flow can ever be decided header-only and the pre-pass would be a
	// wasted scan on every packet-in.
	maybeHeaderOnly bool
}

// progRule is one lowered rule.
type progRule struct {
	src       *Rule // the parsed rule: verdict identity, audit naming, positions
	action    Action
	quick     bool
	keepState bool

	from, to         addrMatcher
	fromPort, toPort PortExpr

	calls []progCall

	// Static key requirements: the @src/@dst dictionary keys this rule's
	// predicates can read. srcAll/dstAll flag rules whose reads are not
	// statically bounded (dynamic embedded `allowed` rules, unknown or
	// operator-registered functions that may evaluate embedded rules).
	srcKeys, dstKeys []string
	srcAll, dstAll   bool
}

// needsEndpointKeys reports whether the rule can read any endpoint
// information at all. Rules for which this is false are decidable from
// the flow header (plus policy-local constants) alone.
func (r *progRule) needsEndpointKeys() bool {
	return len(r.srcKeys) > 0 || len(r.dstKeys) > 0 || r.srcAll || r.dstAll
}

// addrMatchKind discriminates addrMatcher variants.
type addrMatchKind uint8

const (
	matchAny addrMatchKind = iota
	matchPrefix
	matchSet       // resolved table pointer
	matchList      // OR over terms (flattened where possible)
	matchUndefined // table unresolved at lower time (embedded rules only)
)

// addrMatcher is a lowered AddrExpr: tables resolved to IPSet pointers,
// nested non-negated lists flattened into one term slice.
type addrMatcher struct {
	kind   addrMatchKind
	neg    bool
	prefix netaddr.Prefix
	set    *netaddr.IPSet
	list   []addrMatcher
	table  string // matchUndefined: name for the diagnostic
}

// matches reports whether ip satisfies the matcher. c carries the
// diagnostic sink and may be nil (the hint walk needs no diagnostics);
// top-level programs never contain matchUndefined — Compile validates
// table references — so only embedded rules can hit it.
func (m *addrMatcher) matches(c *evalCtx, ip netaddr.IP) bool {
	var base bool
	switch m.kind {
	case matchAny:
		base = true
	case matchPrefix:
		base = m.prefix.Contains(ip)
	case matchSet:
		base = m.set.Contains(ip)
	case matchList:
		for i := range m.list {
			if m.list[i].matches(c, ip) {
				base = true
				break
			}
		}
	case matchUndefined:
		// Same shape as the interpreter: diagnose and fail the match
		// outright, negation notwithstanding.
		if c != nil {
			c.diagf("undefined table <%s>", m.table)
		}
		return false
	}
	return base != m.neg
}

// progArgKind discriminates compiled argument variants.
type progArgKind uint8

const (
	// argConst is a fully pre-resolved Value: literals, macros, and
	// policy-local dictionary lookups.
	argConst progArgKind = iota
	argSrcKey
	argDstKey
	argSrcConcat
	argDstConcat
	// argDiag records a broken reference (undefined macro or dict); it
	// resolves to an absent Value and emits its diagnostic on every
	// evaluation, as the interpreter does.
	argDiag
)

// progArg is one compiled function argument.
type progArg struct {
	kind progArgKind
	val  Value  // argConst/argDiag: the pre-built Value (Arg preserved)
	key  string // argSrc*/argDst*: the dictionary key
	arg  Arg    // original syntactic form for dynamically-built Values
	diag string // argDiag: message to record per evaluation
}

// progCall is one compiled `with` predicate.
type progCall struct {
	name string
	args []progArg
	fc   *FuncCall // original call, for diagnostics
}

// MaybeHeaderOnly reports whether any flow could possibly be decided by
// the header-only pre-pass under this program. False means Prepass would
// fail for every flow and the controller skips it entirely.
func (pr *Program) MaybeHeaderOnly() bool { return pr.maybeHeaderOnly }

// NumRules returns the number of compiled rules.
func (pr *Program) NumRules() int { return len(pr.rules) }

// ReferencedKeys returns the sorted set of @src/@dst keys the program's
// rules can read, including keys inside statically-known embedded
// `allowed` rules. This is the one source of truth behind
// Policy.ReferencedKeys.
func (pr *Program) ReferencedKeys() []string {
	return append([]string(nil), pr.refKeys...)
}

// appendKeyHints appends the members of keys not already in hints,
// preserving hint order; hint sets are small enough that the linear
// containment scan beats any set structure.
func appendKeyHints(hints, keys []string) []string {
outer:
	for _, k := range keys {
		for _, h := range hints {
			if h == k {
				continue outer
			}
		}
		hints = append(hints, k)
	}
	return hints
}

// examines reports whether the matcher's outcome can depend on the
// candidate address at all. matchAny is constant by construction (and
// stays constant under negation), and matchUndefined fails every address
// unconditionally — neither constrains the flow, so a traced evaluation
// must not pin the field they guard.
func (m *addrMatcher) examines() bool {
	switch m.kind {
	case matchAny, matchUndefined:
		return false
	}
	return true
}

// headerMatches applies only the from/to address and port guards — the
// part of a rule decidable from the packet header.
//
// Under tracing, each guard marks its field consumed before evaluating:
// if the guard passes, members of the equivalence class share the passing
// value; if it fails (short-circuiting the rest), members fail it
// identically — either way the verdict transfers. Guards never reached
// contribute nothing, and guards with constant outcomes (any, undefined
// tables, unbounded port ranges) examine nothing.
func (r *progRule) headerMatches(c *evalCtx, f flow.Five) bool {
	if c == nil || !c.tracing {
		return r.from.matches(c, f.SrcIP) &&
			r.fromPort.Matches(f.SrcPort) &&
			r.to.matches(c, f.DstIP) &&
			r.toPort.Matches(f.DstPort)
	}
	if r.from.examines() {
		c.traceFields |= TraceSrcIP
	}
	if !r.from.matches(c, f.SrcIP) {
		return false
	}
	if !r.fromPort.IsAny() {
		c.traceFields |= TraceSrcPort
	}
	if !r.fromPort.Matches(f.SrcPort) {
		return false
	}
	if r.to.examines() {
		c.traceFields |= TraceDstIP
	}
	if !r.to.matches(c, f.DstIP) {
		return false
	}
	if !r.toPort.IsAny() {
		c.traceFields |= TraceDstPort
	}
	return r.toPort.Matches(f.DstPort)
}

// collectHints folds one key-requiring rule's requirements into the two
// hint slices, falling back to the program-wide unions when the rule's
// reads are not statically bounded (hints are advisory; an unbounded
// rule can at best be served every key the policy names anywhere).
func (pr *Program) collectHints(r *progRule, srcHints, dstHints []string) ([]string, []string) {
	if r.srcAll {
		srcHints = appendKeyHints(srcHints, pr.srcKeysAll)
	} else {
		srcHints = appendKeyHints(srcHints, r.srcKeys)
	}
	if r.dstAll {
		dstHints = appendKeyHints(dstHints, pr.dstKeysAll)
	} else {
		dstHints = appendKeyHints(dstHints, r.dstKeys)
	}
	return srcHints, dstHints
}

// Prepass is the header-only pre-pass over the program for one flow. It
// scans the rules applying only the header guards:
//
//   - A rule that cannot match the header is skipped.
//   - A header-matching rule that requires endpoint keys makes the flow
//     undecidable from the header; its key set is folded into the hint
//     slices and the scan continues (last-match-wins: later rules still
//     matter either way).
//   - A header-matching rule with no endpoint requirements is evaluated
//     exactly (its predicates, if any, read only policy-local constants).
//     A matching `quick` rule ends the scan: nothing after it can ever be
//     consulted, whatever the endpoint keys would have said.
//
// When no key-requiring rule was header-matched before the scan ended,
// the returned Decision is the flow's final verdict (headerOnly=true) and
// no endpoint need be queried at all. Otherwise headerOnly is false and
// the returned hint slices name every key that can still matter for this
// flow — the §3.2 query hints, per flow and per end.
//
// srcHints/dstHints are appended into (callers pass recycled capacity);
// they are returned even when headerOnly is true (empty).
func (pr *Program) Prepass(f flow.Five, srcHints, dstHints []string) (d Decision, headerOnly bool, src, dst []string) {
	c := acquireEvalCtx(pr.policy, Input{Flow: f}, 0)
	c.compiled = true
	decidable := true
	d = Decision{Action: pr.policy.Default}
	for i := range pr.rules {
		r := &pr.rules[i]
		if !r.headerMatches(c, f) {
			continue
		}
		if r.needsEndpointKeys() {
			decidable = false
			srcHints, dstHints = pr.collectHints(r, srcHints, dstHints)
			continue
		}
		if !c.progCallsMatch(r) {
			continue
		}
		d.Action = r.action
		d.Rule = r.src
		d.Matched = true
		d.KeepState = r.keepState
		if r.quick {
			// A definite quick match: evaluation can never consult a rule
			// past this one, so neither its verdict nor its keys matter.
			break
		}
	}
	if decidable {
		d.Diags = c.diags
	} else {
		// The constant predicates evaluated above will run again in the
		// full evaluation; their diagnostics must not surface twice.
		d = Decision{}
	}
	releaseEvalCtx(c)
	return d, decidable, srcHints, dstHints
}

// Hints is the hint-collection half of Prepass without predicate
// evaluation, for programs where MaybeHeaderOnly is false (the pre-pass
// can never decide, but a cache-missing flow still wants its per-flow
// key hints). Returns the appended-to slices.
func (pr *Program) Hints(f flow.Five, srcHints, dstHints []string) (src, dst []string) {
	for i := range pr.rules {
		r := &pr.rules[i]
		if !r.headerMatches(nil, f) {
			continue
		}
		if r.needsEndpointKeys() {
			srcHints, dstHints = pr.collectHints(r, srcHints, dstHints)
			continue
		}
		if r.quick && len(r.calls) == 0 {
			// An unconditional quick match: nothing past it is reachable
			// for this flow.
			break
		}
	}
	return srcHints, dstHints
}

// Explain writes a human-readable dump of the compiled program: each
// rule with its static key requirements and header-only classification,
// plus the program-level summary pfcheck -explain prints for operators.
func (pr *Program) Explain(w io.Writer) {
	fmt.Fprintf(w, "program: %d rules, default %s, header-only pre-pass %s\n",
		len(pr.rules), pr.policy.Default, map[bool]string{true: "possible", false: "never applies"}[pr.maybeHeaderOnly])
	if len(pr.refKeys) > 0 {
		fmt.Fprintf(w, "referenced keys: %s\n", strings.Join(pr.refKeys, ", "))
	}
	for i := range pr.rules {
		r := &pr.rules[i]
		fmt.Fprintf(w, "  %3d  %s\n", i, r.src)
		fmt.Fprintf(w, "       keys: %s\n", r.keyRequirements())
	}
}

// keyRequirements renders one rule's static key analysis.
func (r *progRule) keyRequirements() string {
	if !r.needsEndpointKeys() {
		return "none (header-only)"
	}
	var parts []string
	if r.srcAll {
		parts = append(parts, "src[*]")
	} else {
		for _, k := range r.srcKeys {
			parts = append(parts, "src["+k+"]")
		}
	}
	if r.dstAll {
		parts = append(parts, "dst[*]")
	} else {
		for _, k := range r.dstKeys {
			parts = append(parts, "dst["+k+"]")
		}
	}
	return strings.Join(parts, " ")
}

// sortedKeyUnion merges string sets into one sorted, deduplicated slice.
func sortedKeyUnion(sets ...[]string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, set := range sets {
		for _, k := range set {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	sort.Strings(out)
	return out
}
