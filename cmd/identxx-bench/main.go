// Command identxx-bench runs every paper experiment (E1-E9) and emits the
// tables EXPERIMENTS.md records, in plain text or markdown.
//
// Usage:
//
//	identxx-bench [-markdown] [-only E6]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"identxx/internal/experiments"
)

func main() {
	markdown := flag.Bool("markdown", false, "emit GitHub markdown tables")
	only := flag.String("only", "", "run a single experiment id (e.g. E3)")
	flag.Parse()

	ran := 0
	for _, r := range experiments.All {
		if *only != "" && r.ID != *only {
			continue
		}
		ran++
		if *markdown {
			tab := r.Run(io.Discard)
			tab.Markdown(os.Stdout)
		} else {
			r.Run(os.Stdout)
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "identxx-bench: unknown experiment %q\n", *only)
		os.Exit(2)
	}
}
