package main

import "identxx/internal/packet"

// decodeFrame wraps packet.Decode for the handler.
func decodeFrame(frame []byte) (*packet.Packet, error) {
	return packet.Decode(frame)
}
