package main

import (
	"testing"

	"identxx/internal/netaddr"
)

func TestParseTopology(t *testing.T) {
	topo, err := parseTopology(`
# comment
host 10.0.0.1 switch 1 port 2 daemon 10.0.0.1:783
host 10.0.0.2 switch 1 port 3
`)
	if err != nil {
		t.Fatal(err)
	}
	hops, err := topo.Path(netaddr.MustParseIP("10.0.0.2"), netaddr.MustParseIP("10.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 1 || hops[0].Datapath != 1 || hops[0].OutPort != 2 {
		t.Errorf("path = %+v", hops)
	}
	if p := topo.hosts[netaddr.MustParseIP("10.0.0.1")]; p.daemon != "10.0.0.1:783" {
		t.Errorf("daemon addr = %q", p.daemon)
	}
	if p := topo.hosts[netaddr.MustParseIP("10.0.0.2")]; p.daemon != "" {
		t.Errorf("daemonless host has addr %q", p.daemon)
	}
	if _, err := topo.Path(0, netaddr.MustParseIP("9.9.9.9")); err == nil {
		t.Error("unknown destination should fail")
	}
}

func TestParseTopologyErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"host 10.0.0.1 switch 1",
		"host bogus switch 1 port 2",
		"host 10.0.0.1 switch x port 2",
		"host 10.0.0.1 switch 1 port x",
		"peer 10.0.0.1 switch 1 port 2",
	} {
		if _, err := parseTopology(src); err == nil {
			t.Errorf("parseTopology(%q) should fail", src)
		}
	}
}
