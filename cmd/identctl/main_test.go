package main

import (
	"net"
	"strings"
	"testing"
	"time"

	"identxx/internal/cluster"
	"identxx/internal/core"
	"identxx/internal/flow"
	"identxx/internal/netaddr"
	"identxx/internal/openflow"
	"identxx/internal/pf"
	"identxx/internal/wire"
)

func TestParseTopology(t *testing.T) {
	topo, err := parseTopology(`
# comment
host 10.0.0.1 switch 1 port 2 daemon 10.0.0.1:783
host 10.0.0.2 switch 1 port 3
`)
	if err != nil {
		t.Fatal(err)
	}
	hops, err := topo.Path(netaddr.MustParseIP("10.0.0.2"), netaddr.MustParseIP("10.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 1 || hops[0].Datapath != 1 || hops[0].OutPort != 2 {
		t.Errorf("path = %+v", hops)
	}
	if p := topo.hosts[netaddr.MustParseIP("10.0.0.1")]; p.daemon != "10.0.0.1:783" {
		t.Errorf("daemon addr = %q", p.daemon)
	}
	if p := topo.hosts[netaddr.MustParseIP("10.0.0.2")]; p.daemon != "" {
		t.Errorf("daemonless host has addr %q", p.daemon)
	}
	if _, err := topo.Path(0, netaddr.MustParseIP("9.9.9.9")); err == nil {
		t.Error("unknown destination should fail")
	}
}

func TestParseTopologyErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"host 10.0.0.1 switch 1",
		"host bogus switch 1 port 2",
		"host 10.0.0.1 switch x port 2",
		"host 10.0.0.1 switch 1 port x",
		"peer 10.0.0.1 switch 1 port 2",
	} {
		if _, err := parseTopology(src); err == nil {
			t.Errorf("parseTopology(%q) should fail", src)
		}
	}
}

func TestAdminCommands(t *testing.T) {
	tr := nullTransport{}
	ctl := core.New(core.Config{
		Name:             "admin-test",
		Policy:           pf.MustCompile("p", "block all\npass from any to any with eq(@src[name], skype)"),
		Transport:        tr,
		Topology:         &sinkTopo{},
		InstallEntries:   true,
		ResponseCacheTTL: time.Hour,
		Revocation:       true,
	})
	ctl.AddDatapath(&sinkDatapath{id: 1})
	five := flow.Five{
		SrcIP: netaddr.MustParseIP("10.0.0.1"), DstIP: netaddr.MustParseIP("10.0.0.2"),
		Proto: netaddr.ProtoTCP, SrcPort: 40000, DstPort: 80,
	}
	ctl.HandleEvent(openflow.PacketIn{
		SwitchID: 1, BufferID: openflow.BufferNone, InPort: 1,
		Tuple: flow.Ten{
			EthType: flow.EthTypeIPv4,
			SrcIP:   five.SrcIP, DstIP: five.DstIP, Proto: five.Proto,
			SrcPort: five.SrcPort, DstPort: five.DstPort,
		},
	})

	if got := adminCommand(adminState{ctl: ctl}, "stats"); got != "ok live=1 registered=1 dropped=0" {
		t.Errorf("stats = %q", got)
	}
	if got := adminCommand(adminState{ctl: ctl}, "revoke 10.0.0.1 name"); got != "ok 1" {
		t.Errorf("revoke = %q", got)
	}
	if got := adminCommand(adminState{ctl: ctl}, "revoke 10.0.0.1"); got != "ok 0" {
		t.Errorf("second revoke = %q", got)
	}
	if got := adminCommand(adminState{ctl: ctl}, "sweep"); got != "ok 0" {
		t.Errorf("sweep = %q", got)
	}
	for _, bad := range []string{"", "revoke", "revoke bogus", "revoke 1.2.3.4 k extra", "frobnicate"} {
		if got := adminCommand(adminState{ctl: ctl}, bad); len(got) < 3 || got[:3] != "err" {
			t.Errorf("adminCommand(%q) = %q, want err", bad, got)
		}
	}
}

// TestAdminOverTCP drives the listener + client round trip.
func TestAdminOverTCP(t *testing.T) {
	ctl := core.New(core.Config{
		Name:       "admin-tcp",
		Policy:     pf.MustCompile("p", "block all"),
		Transport:  nullTransport{},
		Topology:   &sinkTopo{},
		Revocation: true,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go serveAdmin(l, adminState{ctl: ctl})
	reply, err := adminRoundTrip(l.Addr().String(), "revoke 10.0.0.9")
	if err != nil {
		t.Fatal(err)
	}
	if reply != "ok 0" {
		t.Errorf("reply = %q", reply)
	}
}

type nullTransport struct{}

func (nullTransport) Query(host netaddr.IP, q wire.Query) (*wire.Response, time.Duration, error) {
	r := wire.NewResponse(q.Flow)
	r.Add(wire.KeyName, "skype")
	return r, 0, nil
}

type sinkTopo struct{}

func (sinkTopo) Path(src, dst netaddr.IP) ([]core.Hop, error) {
	return []core.Hop{{Datapath: 1, OutPort: 2}}, nil
}

type sinkDatapath struct{ id uint64 }

func (d *sinkDatapath) DatapathID() uint64                  { return d.id }
func (d *sinkDatapath) Apply(openflow.FlowMod) error        { return nil }
func (d *sinkDatapath) PacketOut(port uint16, frame []byte) {}
func (d *sinkDatapath) ReleaseBuffer(id uint32)             {}

// TestAdminRing drives the cluster drill-down: listing, the self line's
// counters, the drop form, and the error without a router.
func TestAdminRing(t *testing.T) {
	ctl := core.New(core.Config{
		Name:             "ring-test",
		Policy:           pf.MustCompile("p", "pass all"),
		Transport:        nullTransport{},
		Topology:         &sinkTopo{},
		ResponseCacheTTL: time.Hour,
	})
	ctl.AddDatapath(&sinkDatapath{id: 1})
	rt := cluster.NewRouter(ctl, cluster.Member{ID: "a", Addr: "127.0.0.1:1"}, cluster.Options{})
	if err := rt.SetMembers([]cluster.Member{
		{ID: "a", Addr: "127.0.0.1:1"}, {ID: "b", Addr: "127.0.0.1:2"},
	}); err != nil {
		t.Fatal(err)
	}

	if got := adminCommand(adminState{ctl: ctl}, "ring"); !strings.HasPrefix(got, "err") {
		t.Errorf("ring without a router = %q, want err", got)
	}

	got := adminCommand(adminState{ctl: ctl, rt: rt}, "ring")
	lines := strings.Split(got, "\n")
	if lines[0] != "ok 2" {
		t.Fatalf("ring head = %q, want ok 2", lines[0])
	}
	var selfLine string
	for _, l := range lines[1:] {
		if strings.Contains(l, "self=true") {
			selfLine = l
		}
	}
	for _, field := range []string{"replica=a", "share=", "owned=", "forwarded=", "fallbacks=", "epoch="} {
		if !strings.Contains(selfLine, field) {
			t.Errorf("self line %q missing %s", selfLine, field)
		}
	}

	got = adminCommand(adminState{ctl: ctl, rt: rt}, "ring drop b")
	if !strings.HasPrefix(got, "ok 1\n") {
		t.Errorf("ring drop = %q, want 1-member listing", got)
	}
	if got := adminCommand(adminState{ctl: ctl, rt: rt}, "ring bogus"); !strings.HasPrefix(got, "err") {
		t.Errorf("ring bogus = %q, want err", got)
	}
}
