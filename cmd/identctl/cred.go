package main

// `identctl cred` is the delegation authority's offline toolchain: keygen
// mints the authority keypair (the private half never touches a serving
// controller — only the .pub file does, via -authority-key), issue signs a
// short-lived credential scoping one host to a key set, and show prints
// and optionally verifies a credential file. The issued file goes to the
// host's identd (-cred), which presents it in every subscription hello;
// rotation is re-running issue over the same path.

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"identxx/internal/cred"
	"identxx/internal/netaddr"
	"identxx/internal/sig"
)

func credMain(args []string) {
	if len(args) == 0 {
		credUsage()
		os.Exit(2)
	}
	switch args[0] {
	case "keygen":
		credKeygen(args[1:])
	case "issue":
		credIssue(args[1:])
	case "show":
		credShow(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "identctl cred: unknown command %q\n", args[0])
		credUsage()
		os.Exit(2)
	}
}

func credUsage() {
	fmt.Fprintln(os.Stderr, `usage: identctl cred <command>
  keygen -out <file>          generate an authority keypair (<file> + <file>.pub)
  issue -authority <file> -host <ip> [-keys a,b|*] [-ttl dur] -out <file>
                              issue a host credential signed by the authority
  show [-authority <pubfile>] <file>
                              print a credential file, verifying when a key is given`)
}

func credKeygen(args []string) {
	fs := flag.NewFlagSet("cred keygen", flag.ExitOnError)
	out := fs.String("out", "", "private-key output path; the public half goes to <out>.pub (required)")
	fs.Parse(args)
	if *out == "" {
		fmt.Fprintln(os.Stderr, "identctl cred keygen: -out is required")
		os.Exit(2)
	}
	pub, priv, err := sig.GenerateKey()
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, []byte(priv.String()+"\n"), 0o600); err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out+".pub", []byte(pub.String()+"\n"), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("identctl: authority keypair written to %s (public half %s.pub)\n", *out, *out)
}

func credIssue(args []string) {
	fs := flag.NewFlagSet("cred issue", flag.ExitOnError)
	authority := fs.String("authority", "", "authority private-key file from `cred keygen` (required)")
	hostArg := fs.String("host", "", "host IP the credential speaks for (required)")
	keys := fs.String("keys", "*", "comma-separated keys the host may assert (* = all)")
	ttl := fs.Duration("ttl", 24*time.Hour, "credential lifetime")
	out := fs.String("out", "", "credential output path, - for stdout (required)")
	fs.Parse(args)
	if *authority == "" || *hostArg == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "identctl cred issue: -authority, -host and -out are required")
		os.Exit(2)
	}
	priv := loadAuthorityPriv(*authority)
	host, err := netaddr.ParseIP(*hostArg)
	if err != nil {
		fatal(err)
	}
	var keyList []string
	if *keys != "" && *keys != "*" {
		keyList = strings.Split(*keys, ",")
	}
	ic, err := cred.Issue(priv, host, keyList, time.Now().Add(*ttl))
	if err != nil {
		fatal(err)
	}
	data := cred.EncodeIssued(ic)
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o600); err != nil {
		fatal(err)
	}
	fmt.Printf("identctl: credential for %s (keys %s) written to %s, expires %s\n",
		host, scopeString(ic.Credential), *out, ic.Expiry.Format(time.RFC3339))
}

func credShow(args []string) {
	fs := flag.NewFlagSet("cred show", flag.ExitOnError)
	authority := fs.String("authority", "", "authority public-key file to verify against (optional)")
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) != 1 {
		fmt.Fprintln(os.Stderr, "usage: identctl cred show [-authority <pubfile>] <file>")
		os.Exit(2)
	}
	ic, err := cred.LoadFile(rest[0])
	if err != nil {
		fatal(err)
	}
	fmt.Printf("host:   %s\nscope:  %s\nexpiry: %s\n",
		ic.Host, scopeString(ic.Credential), ic.Expiry.Format(time.RFC3339))
	if *authority != "" {
		pub := loadAuthorityPub(*authority)
		if err := ic.Verify(pub, time.Now()); err != nil {
			fatal(fmt.Errorf("credential INVALID: %w", err))
		}
		fmt.Println("verify: ok")
	}
}

func scopeString(c cred.Credential) string {
	if c.Wild {
		return "*"
	}
	return strings.Join(c.Keys, ",")
}

func loadAuthorityPriv(path string) sig.PrivateKey {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	priv, err := sig.ParsePrivateKey(strings.TrimSpace(string(data)))
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return priv
}

func loadAuthorityPub(path string) sig.PublicKey {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	pub, err := sig.ParsePublicKey(strings.TrimSpace(string(data)))
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return pub
}
