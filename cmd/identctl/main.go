// Command identctl runs the ident++ controller for real OpenFlow-style
// switches attached over the TCP secure channel (internal/openflow's
// protocol): it loads the PF+=2 policy from a .control directory, queries
// the ident++ daemons at both ends of every new flow, and installs the
// verdicts into the switches.
//
// Host placement (which switch/port each host hangs off, and where its
// daemon listens) comes from a topology file:
//
//	# host <ip> switch <datapath-id> port <n> [daemon <addr:port>]
//	host 10.0.0.1 switch 1 port 2 daemon 10.0.0.1:783
//	host 10.0.0.2 switch 1 port 3
//
// Usage:
//
//	identctl -listen :6633 -policy ./policy.d -topology hosts.topo
//	identctl revoke [-admin addr] <host-ip> [key]
//
// The serving controller runs the revocation plane: daemons that push
// endpoint-state updates get their flows torn down the moment a fact stops
// being true, daemons that do not are covered by TTL leases
// (-revocation-lease), and the -admin listener makes operator-initiated
// revocation (`identctl revoke`) available from any shell.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"identxx/internal/cluster"
	"identxx/internal/core"
	"identxx/internal/netaddr"
	"identxx/internal/openflow"
	"identxx/internal/pf"
	"identxx/internal/query"
	"identxx/internal/sig"
	"identxx/internal/telemetry"
	"identxx/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "revoke" {
		revokeMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "admin" {
		adminMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "cred" {
		credMain(os.Args[2:])
		return
	}
	listen := flag.String("listen", ":6633", "secure-channel listen address")
	policyDir := flag.String("policy", "", ".control policy directory (required)")
	topoFile := flag.String("topology", "", "host placement file (required)")
	queryTimeout := flag.Duration("query-timeout", 2*time.Second, "ident++ query timeout")
	adminAddr := flag.String("admin", "127.0.0.1:7833", "admin listen address for `identctl revoke` (empty disables)")
	authorityFile := flag.String("authority-key", "", "delegation-authority public key file; daemon answers require a valid credential (empty = insecure mode)")
	leaseTTL := flag.Duration("revocation-lease", 5*time.Minute, "fact lease for daemons that do not push updates (0 disables)")
	cacheTTL := flag.Duration("cache-ttl", 0, "response-cache TTL for repeated flow setups (0 disables caching)")
	megaflow := flag.Bool("megaflow", false, "widen cached verdicts into wildcard megaflows (requires -cache-ttl)")
	telemetryAddr := flag.String("telemetry", "", "HTTP listen address for /metrics, /healthz, /readyz (empty disables)")
	telemetryPprof := flag.Bool("telemetry-pprof", false, "mount /debug/pprof/ on the telemetry listener (requires -telemetry; see docs/operations.md before enabling in production)")
	traceSample := flag.Int("trace-sample", 0, "flight recorder: retain roughly 1 in N decision traces (0 disables sampling; 1 traces everything)")
	traceSlow := flag.Duration("trace-slow", 0, "flight recorder: always retain decisions slower than this, regardless of -trace-sample (0 disables)")
	auditLog := flag.String("audit-log", "", "structured audit stream destination: file path, or - for stdout (empty disables)")
	clusterSelf := flag.String("cluster-self", "", "this replica as id@addr for multi-controller operation (empty = single controller)")
	clusterPeers := flag.String("cluster-peers", "", "comma-separated peer replicas as id@addr")
	clusterListen := flag.String("cluster-listen", "", "inter-controller listen address (defaults to -cluster-self's addr)")
	flag.Parse()
	if *policyDir == "" || *topoFile == "" {
		fmt.Fprintln(os.Stderr, "identctl: -policy and -topology are required")
		os.Exit(2)
	}
	if *megaflow && *cacheTTL <= 0 {
		fmt.Fprintln(os.Stderr, "identctl: -megaflow requires -cache-ttl > 0 (widened entries share the cache's TTL)")
		os.Exit(2)
	}
	policy, err := pf.LoadControlDir(*policyDir)
	if err != nil {
		fatal(err)
	}
	policy.Default = pf.Block // a deployed controller fails closed

	topoBytes, err := os.ReadFile(*topoFile)
	if err != nil {
		fatal(err)
	}
	topo, err := parseTopology(string(topoBytes))
	if err != nil {
		fatal(err)
	}

	var authority sig.PublicKey
	if *authorityFile != "" {
		authority = loadAuthorityPub(*authorityFile)
	}

	// The production query plane: pooled pipelined connections to the
	// daemons the topology declares, under the coalescing/negative-cache
	// engine, driving the controller's non-blocking decision pipeline.
	pool := query.NewPool(query.PoolConfig{
		Resolver:       topoResolver{topo},
		RequestTimeout: *queryTimeout,
		AuthorityKey:   authority,
	})
	defer pool.Close()
	eng := query.NewEngine(query.Config{
		Lower:          pool,
		RequestTimeout: *queryTimeout,
	})
	defer eng.Close()

	// The flight recorder exists only when the operator asked for it; a nil
	// recorder is the zero-overhead disabled state everywhere downstream.
	var recorder *trace.Recorder
	if *traceSample > 0 || *traceSlow > 0 {
		recorder = trace.New(trace.Config{
			SampleEvery:   *traceSample,
			SlowThreshold: *traceSlow,
		})
	}
	ctl := core.New(core.Config{
		Name:               "identctl",
		Policy:             policy,
		Transport:          eng,
		Topology:           topo,
		InstallEntries:     true,
		AsyncQueries:       true,
		Revocation:         true,
		RevocationLeaseTTL: *leaseTTL,
		ResponseCacheTTL:   *cacheTTL,
		Megaflow:           *megaflow,
		RequireCredentials: *authorityFile != "",
		Trace:              recorder,
	})
	// Close the revocation loop: daemon pushes demuxed by the pool land in
	// the controller's teardown pipeline.
	eng.SetUpdateHandler(ctl.HandleUpdate)

	// Multi-controller operation: wrap the controller in the ownership
	// router. Non-owned packet-ins forward to their owning replica; each
	// replica re-queries and re-subscribes for the flows it owns.
	var rt *cluster.Router
	if *clusterSelf != "" {
		self, err := parseMember(*clusterSelf)
		if err != nil {
			fatal(err)
		}
		rt = cluster.NewRouter(ctl, self, cluster.Options{Trace: recorder})
		members := []cluster.Member{self}
		if *clusterPeers != "" {
			for _, p := range strings.Split(*clusterPeers, ",") {
				m, err := parseMember(strings.TrimSpace(p))
				if err != nil {
					fatal(err)
				}
				if m.Addr == "" {
					fatal(fmt.Errorf("cluster peer %s needs an address (id@addr)", m.ID))
				}
				members = append(members, m)
			}
		}
		claddr := *clusterListen
		if claddr == "" {
			claddr = self.Addr
		}
		if claddr == "" {
			fatal(fmt.Errorf("-cluster-self needs an address (id@addr) or -cluster-listen"))
		}
		cl, err := net.Listen("tcp", claddr)
		if err != nil {
			fatal(err)
		}
		defer cl.Close()
		go rt.Serve(cl)
		if err := rt.SetMembers(members); err != nil {
			fmt.Fprintf(os.Stderr, "identctl: cluster: %v\n", err)
		}
		fmt.Printf("identctl: replica %s in a %d-member ring, inter-controller on %s\n",
			self.ID, len(members), claddr)
	} else if *clusterPeers != "" || *clusterListen != "" {
		fatal(fmt.Errorf("-cluster-peers/-cluster-listen require -cluster-self"))
	}
	if *leaseTTL > 0 {
		go func() {
			tick := time.NewTicker(*leaseTTL / 2)
			defer tick.Stop()
			for range tick.C {
				ctl.SweepLeases()
			}
		}()
	}
	if *adminAddr != "" {
		al, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			fatal(err)
		}
		defer al.Close()
		go serveAdmin(al, adminState{ctl: ctl, eng: eng, rt: rt, tr: recorder})
	}
	var auditSink *telemetry.AuditSink
	if *auditLog != "" {
		w := os.Stdout
		if *auditLog != "-" {
			f, err := os.OpenFile(*auditLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		auditSink = telemetry.NewAuditSink(w, 0)
		ctl.Audit.SetStream(auditSink.Record)
		// Detach before Close so no Record races the drain.
		defer auditSink.Close()
		defer ctl.Audit.SetStream(nil)
	}
	if *telemetryAddr != "" {
		ts := telemetry.NewServer()
		telemetry.RegisterController(ts.Registry, ctl)
		if rt != nil {
			telemetry.RegisterRouter(ts.Registry, rt)
		}
		telemetry.RegisterEngine(ts.Registry, eng)
		telemetry.RegisterPool(ts.Registry, pool)
		telemetry.RegisterControllerHealth(ts.Health, ctl)
		telemetry.RegisterPoolHealth(ts.Health, pool)
		if auditSink != nil {
			telemetry.RegisterAuditSink(ts.Registry, auditSink)
		}
		telemetry.RegisterBuildInfo(ts.Registry)
		if recorder != nil {
			telemetry.RegisterTrace(ts.Registry, recorder)
			ts.MountTrace(recorder)
		}
		if *telemetryPprof {
			ts.EnablePprof()
		}
		taddr, err := ts.Start(*telemetryAddr)
		if err != nil {
			fatal(err)
		}
		defer ts.Close()
		fmt.Printf("identctl: telemetry on http://%s/metrics\n", taddr)
	}
	handler := &channelHandler{ctl: ctl, rt: rt}
	server := openflow.NewChannelServer(handler)
	addr, err := server.Listen(*listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("identctl: %d rules loaded, querying keys %v, listening on %s\n",
		len(policy.Rules), policy.ReferencedKeys(), addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("identctl: shutting down;", ctl.Counters)
	server.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "identctl:", err)
	os.Exit(1)
}

// parseMember parses "id@addr" (addr optional for -cluster-self when
// -cluster-listen is given separately).
func parseMember(s string) (cluster.Member, error) {
	id, addr, _ := strings.Cut(s, "@")
	if id == "" {
		return cluster.Member{}, fmt.Errorf("bad cluster member %q, want id@addr", s)
	}
	return cluster.Member{ID: id, Addr: addr}, nil
}

// channelHandler adapts ChannelServer callbacks onto the controller — or,
// in multi-controller operation, onto the ownership router in front of it.
type channelHandler struct {
	ctl *core.Controller
	rt  *cluster.Router // nil when not clustered
}

func (h *channelHandler) SwitchConnected(sw *openflow.RemoteSwitch) {
	fmt.Printf("identctl: switch %d connected\n", sw.DatapathID())
	if h.rt != nil {
		h.rt.AddDatapath(sw)
		return
	}
	h.ctl.AddDatapath(sw)
}

func (h *channelHandler) PacketIn(sw *openflow.RemoteSwitch, ev openflow.PacketIn) {
	// The wire codec does not carry the parsed tuple; rebuild it from the
	// frame before handing the event to the controller.
	ev = rebuildTuple(ev)
	if h.rt != nil {
		h.rt.HandleEvent(ev)
		return
	}
	h.ctl.HandleEvent(ev)
}

func (h *channelHandler) FlowRemoved(sw *openflow.RemoteSwitch, ev openflow.FlowRemoved) {
	if h.rt != nil {
		h.rt.HandleFlowRemoved(nil, ev)
		return
	}
	h.ctl.HandleFlowRemoved(nil, ev)
}

func (h *channelHandler) SwitchDisconnected(sw *openflow.RemoteSwitch) {
	fmt.Printf("identctl: switch %d disconnected\n", sw.DatapathID())
}

func rebuildTuple(ev openflow.PacketIn) openflow.PacketIn {
	if p, err := decodeFrame(ev.Frame); err == nil {
		ev.Tuple = p.Ten(ev.InPort)
	}
	return ev
}

// topology is the static placement map for path computation and daemon
// addressing.
type topology struct {
	hosts map[netaddr.IP]placement
}

type placement struct {
	datapath uint64
	port     uint16
	daemon   string // "" = no daemon
}

func parseTopology(src string) (*topology, error) {
	t := &topology{hosts: make(map[netaddr.IP]placement)}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 6 || f[0] != "host" || f[2] != "switch" || f[4] != "port" {
			return nil, fmt.Errorf("topology line %d: want `host <ip> switch <id> port <n> [daemon <addr>]`", lineNo+1)
		}
		ip, err := netaddr.ParseIP(f[1])
		if err != nil {
			return nil, fmt.Errorf("topology line %d: %v", lineNo+1, err)
		}
		dp, err := strconv.ParseUint(f[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("topology line %d: bad switch id", lineNo+1)
		}
		port, err := strconv.ParseUint(f[5], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("topology line %d: bad port", lineNo+1)
		}
		p := placement{datapath: dp, port: uint16(port)}
		if len(f) >= 8 && f[6] == "daemon" {
			p.daemon = f[7]
		}
		t.hosts[ip] = p
	}
	if len(t.hosts) == 0 {
		return nil, fmt.Errorf("topology: no hosts")
	}
	return t, nil
}

// Path implements core.Topology for single-switch-per-host placements: the
// destination's attachment switch forwards out the destination's port.
// Multi-switch fabrics are the simulator's domain; a deployed identctl
// fronts one switch per segment.
func (t *topology) Path(src, dst netaddr.IP) ([]core.Hop, error) {
	p, ok := t.hosts[dst]
	if !ok {
		return nil, fmt.Errorf("identctl: unknown destination host %s", dst)
	}
	return []core.Hop{{Datapath: p.datapath, OutPort: p.port}}, nil
}

// topoResolver maps host IPs to the daemon addresses the topology file
// declares; a host without a daemon entry is daemon-less (§4), which the
// query plane reports as core.ErrNoDaemon without dialing.
type topoResolver struct {
	topo *topology
}

func (r topoResolver) Resolve(host netaddr.IP) (string, bool) {
	p, ok := r.topo.hosts[host]
	if !ok || p.daemon == "" {
		return "", false
	}
	return p.daemon, true
}
