package main

// The admin channel: a line-oriented TCP listener on the serving
// controller (enabled with -admin), and the `identctl revoke` / `identctl
// admin` subcommands that speak to it. This is what makes the revocation
// plane and the drill-down surface operable from a shell: `identctl revoke
// 10.0.0.7` tears down every live flow admitted on facts from that host;
// `identctl admin shards` dumps per-shard occupancy.
//
// Protocol (one request per line). Single-valued commands reply with one
// line; drill-down commands reply with a count line followed by exactly
// that many detail lines:
//
//	revoke <host-ip> [key]   ->  ok <flows-torn-down> | err <message>
//	sweep                    ->  ok <flows-torn-down>
//	stats                    ->  ok live=<n> registered=<n> dropped=<n>
//	stats megaflow           ->  ok live=<n> hits=<n> installs=<n> teardowns=<n>
//	stats wide               ->  ok live=<n> registered=<n> dropped=<n>
//	stats rulecache          ->  ok entries=<n> evictions=<n>
//	status                   ->  ok epoch=<n> datapaths=<n> shards=<n> cached=<n> install_busy=<n> install_workers=<n>
//	counters                 ->  ok <n>  then n lines  <name> <value>
//	shards                   ->  ok <n>  then n lines  shard=<i> cached=<n> pending=<n> waiters=<n> revseq=<n>
//	hosts                    ->  ok <n>  then n lines  host=<ip> flows=<n> wide=<n> push=<bool> queries=<n> rtt_mean=<dur> rtt_p99=<dur> fails=<n> breaker=<bool> cred=<state> scope=<keys> exp=<rfc3339> cred_err=<verdict>
//	rules                    ->  ok <n>  then n lines  rule=<q-string> total=<n> denied=<n> revoked=<n>
//	creds                    ->  ok <n>  then n lines  host=<ip> present=<bool> verified=<bool> scope=<keys> exp=<rfc3339> err=<verdict>
//	ring                     ->  ok <n>  then n lines  replica=<id> addr=<addr> self=<bool> linked=<bool> share=<frac> [owned=<n> forwarded=<n> received=<n> fallbacks=<n> epoch=<n> origin=<id>]
//	ring drop <replica-id>   ->  same listing after removing the replica from the ring (failover)
//	trace [slow|<id>]        ->  ok <n>  then n JSON lines, one retained flight-recorder trace each
//
// The cred fields on `hosts` are `-` placeholders when the controller runs
// in insecure mode (no -authority-key); cred=<state> is ok, none (no hello
// seen yet), or the last rejection verdict (missing/forged/expired/scope).

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"identxx/internal/cluster"
	"identxx/internal/core"
	"identxx/internal/netaddr"
	"identxx/internal/query"
	"identxx/internal/revoke"
	"identxx/internal/trace"
)

// adminState is everything the admin channel can drill into. eng may be
// nil (tests that only exercise the controller); rt is nil when the
// controller is not clustered; tr is nil unless the flight recorder was
// enabled (-trace-sample / -trace-slow).
type adminState struct {
	ctl *core.Controller
	eng *query.Engine
	rt  *cluster.Router
	tr  *trace.Recorder
}

// serveAdmin runs the admin listener until the listener is closed.
func serveAdmin(l net.Listener, st adminState) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go func() {
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(30 * time.Second))
			sc := bufio.NewScanner(conn)
			for sc.Scan() {
				fmt.Fprintf(conn, "%s\n", adminCommand(st, sc.Text()))
				conn.SetDeadline(time.Now().Add(30 * time.Second))
			}
		}()
	}
}

// adminCommand executes one admin line and renders the reply (multi-line
// for drill-down commands; the first line always starts "ok" or "err").
func adminCommand(st adminState, line string) string {
	ctl := st.ctl
	f := strings.Fields(line)
	if len(f) == 0 {
		return "err empty command"
	}
	switch f[0] {
	case "revoke":
		if len(f) < 2 || len(f) > 3 {
			return "err usage: revoke <host-ip> [key]"
		}
		host, err := netaddr.ParseIP(f[1])
		if err != nil {
			return "err " + err.Error()
		}
		key := ""
		if len(f) == 3 {
			key = f[2]
		}
		return fmt.Sprintf("ok %d", ctl.RevokeHost(host, key))
	case "sweep":
		return fmt.Sprintf("ok %d", ctl.SweepLeases())
	case "stats":
		if len(f) == 1 {
			live, registered, dropped := ctl.RevocationIndexStats()
			return fmt.Sprintf("ok live=%d registered=%d dropped=%d", live, registered, dropped)
		}
		switch f[1] {
		case "megaflow":
			live, hits, installs, teardowns := ctl.MegaflowStats()
			return fmt.Sprintf("ok live=%d hits=%d installs=%d teardowns=%d", live, hits, installs, teardowns)
		case "wide":
			live, registered, dropped := ctl.WideStats()
			return fmt.Sprintf("ok live=%d registered=%d dropped=%d", live, registered, dropped)
		case "rulecache":
			entries, evictions := ctl.PolicyRuleCacheStats()
			return fmt.Sprintf("ok entries=%d evictions=%d", entries, evictions)
		default:
			return "err unknown stats scope " + f[1]
		}
	case "status":
		busy, workers := core.InstallBacklog()
		return fmt.Sprintf("ok epoch=%d datapaths=%d shards=%d cached=%d install_busy=%d install_workers=%d",
			ctl.Epoch(), ctl.DatapathCount(), ctl.Shards(), ctl.CachedFlows(), busy, workers)
	case "counters":
		snap := ctl.Counters.Snapshot()
		names := make([]string, 0, len(snap))
		for n := range snap {
			names = append(names, n)
		}
		sort.Strings(names)
		var b strings.Builder
		fmt.Fprintf(&b, "ok %d", len(names))
		for _, n := range names {
			fmt.Fprintf(&b, "\n%s %d", n, snap[n])
		}
		return b.String()
	case "shards":
		stats := ctl.ShardStats()
		var b strings.Builder
		fmt.Fprintf(&b, "ok %d", len(stats))
		for i, s := range stats {
			fmt.Fprintf(&b, "\nshard=%d cached=%d pending=%d waiters=%d revseq=%d",
				i, s.Cached, s.Pending, s.Waiters, s.RevSeq)
		}
		return b.String()
	case "ring":
		if st.rt == nil {
			return "err cluster disabled (run with -cluster-self)"
		}
		if len(f) == 3 && f[1] == "drop" {
			st.rt.RemoveMember(f[2])
			return ringReply(st)
		}
		if len(f) != 1 {
			return "err usage: ring [drop <replica-id>]"
		}
		return ringReply(st)
	case "trace":
		return traceReply(st, f[1:])
	case "hosts":
		return hostsReply(st)
	case "creds":
		return credsReply(st)
	case "rules":
		counts := ctl.Audit.RuleCounts()
		var b strings.Builder
		fmt.Fprintf(&b, "ok %d", len(counts))
		for _, rc := range counts {
			fmt.Fprintf(&b, "\nrule=%q total=%d denied=%d revoked=%d",
				rc.Rule, rc.Total, rc.Denied, rc.Revoked)
		}
		return b.String()
	default:
		return "err unknown command " + f[0]
	}
}

// ringReply is the cluster ownership drill-down: one line per replica in
// the ring with its estimated share of the flow space, and — on the local
// replica's line — the owned/forwarded/received/fallback counters plus the
// last replicated-config epoch seen.
func ringReply(st adminState) string {
	stats := st.rt.RingStats(0)
	var b strings.Builder
	fmt.Fprintf(&b, "ok %d", len(stats))
	for _, s := range stats {
		addr := s.Member.Addr
		if addr == "" {
			addr = "-"
		}
		fmt.Fprintf(&b, "\nreplica=%s addr=%s self=%t linked=%t share=%.3f",
			s.Member.ID, addr, s.Self, s.Linked, s.Share)
		if s.Self {
			c := st.rt.Counters
			epoch, origin := st.rt.Epoch()
			if origin == "" {
				origin = "-"
			}
			fmt.Fprintf(&b, " owned=%d forwarded=%d received=%d fallbacks=%d epoch=%d origin=%s",
				c.Get("cluster_events_owned"), c.Get("cluster_events_forwarded"),
				c.Get("cluster_events_received"), c.Get("cluster_forward_fallbacks"),
				epoch, origin)
		}
	}
	return b.String()
}

// traceReply is the flight-recorder drill-down: one JSON line per retained
// trace, same encoding as the telemetry server's /trace endpoint.
func traceReply(st adminState, args []string) string {
	if st.tr == nil {
		return "err tracing disabled (run with -trace-sample or -trace-slow)"
	}
	var traces []trace.Trace
	switch {
	case len(args) == 0:
		traces = st.tr.Traces()
	case len(args) == 1 && args[0] == "slow":
		traces = st.tr.Slow()
	case len(args) == 1:
		id, err := trace.ParseID(args[0])
		if err != nil {
			return "err " + err.Error()
		}
		traces = st.tr.Find(id)
	default:
		return "err usage: trace [slow|<id>]"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "ok %d", len(traces))
	var body strings.Builder
	if err := trace.WriteJSON(&body, traces); err != nil {
		return "err " + err.Error()
	}
	if s := strings.TrimSuffix(body.String(), "\n"); s != "" {
		b.WriteString("\n")
		b.WriteString(s)
	}
	return b.String()
}

// hostsReply merges the revocation index's per-host dependency view with
// the query engine's per-host availability view, keyed by IP: which hosts
// the controller currently trusts for what, and how their daemons behave.
func hostsReply(st adminState) string {
	deps := st.ctl.HostDependencies()
	depBy := make(map[netaddr.IP]revoke.HostStat, len(deps))
	ips := make([]netaddr.IP, 0, len(deps))
	for _, d := range deps {
		depBy[d.Host] = d
		ips = append(ips, d.Host)
	}
	var engBy map[netaddr.IP]query.HostStatus
	if st.eng != nil {
		hs := st.eng.HostStats()
		engBy = make(map[netaddr.IP]query.HostStatus, len(hs))
		for _, h := range hs {
			engBy[h.Host] = h
			if _, ok := depBy[h.Host]; !ok {
				ips = append(ips, h.Host)
			}
		}
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "ok %d", len(ips))
	for _, ip := range ips {
		d := depBy[ip]
		e := engBy[ip]
		state, scope, exp, credErr := credFields(st.eng, ip)
		fmt.Fprintf(&b, "\nhost=%s flows=%d wide=%d push=%t queries=%d rtt_mean=%s rtt_p99=%s fails=%d breaker=%t cred=%s scope=%s exp=%s cred_err=%s",
			ip, d.Flows, d.Wide, d.Push, e.Queries,
			e.RTTMean.Round(time.Microsecond), e.RTTP99.Round(time.Microsecond),
			e.Fails, e.BreakerOpen, state, scope, exp, credErr)
	}
	return b.String()
}

// credFields renders one host's credential status for the hosts table:
// all `-` in insecure mode; cred=none before any hello; otherwise ok or
// the rejection verdict. cred_err keeps the last verify error even while
// cred=ok (a verified session that had an answer rejected for scope shows
// cred=ok cred_err=scope).
func credFields(eng *query.Engine, ip netaddr.IP) (state, scope, exp, credErr string) {
	state, scope, exp, credErr = "-", "-", "-", "-"
	if eng == nil || !eng.Credentialed() {
		return
	}
	cs, ok := eng.CredentialStatus(ip)
	if !ok || !cs.Present {
		state = "none"
		return
	}
	switch {
	case cs.Verified:
		state = "ok"
	case cs.Err != "":
		state = cs.Err
	default:
		state = "none"
	}
	if cs.Wild {
		scope = "*"
	} else if len(cs.Scope) > 0 {
		scope = strings.Join(cs.Scope, ",")
	}
	if !cs.Expiry.IsZero() {
		exp = cs.Expiry.UTC().Format(time.RFC3339)
	}
	if cs.Err != "" {
		credErr = cs.Err
	}
	return
}

// credsReply is the credential drill-down: one line per session the query
// plane has seen, whatever its verdict. Empty in insecure mode.
func credsReply(st adminState) string {
	var sessions []query.HostCredStatus
	if st.eng != nil {
		sessions = st.eng.CredentialSessions()
	}
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].Host < sessions[j].Host })
	var b strings.Builder
	fmt.Fprintf(&b, "ok %d", len(sessions))
	for _, s := range sessions {
		scope, exp, errStr := "-", "-", "-"
		if s.Wild {
			scope = "*"
		} else if len(s.Scope) > 0 {
			scope = strings.Join(s.Scope, ",")
		}
		if !s.Expiry.IsZero() {
			exp = s.Expiry.UTC().Format(time.RFC3339)
		}
		if s.Err != "" {
			errStr = s.Err
		}
		fmt.Fprintf(&b, "\nhost=%s present=%t verified=%t scope=%s exp=%s err=%s",
			s.Host, s.Present, s.Verified, scope, exp, errStr)
	}
	return b.String()
}

// revokeMain is the `identctl revoke` subcommand: it connects to a serving
// identctl's admin channel and requests the teardown.
func revokeMain(args []string) {
	fs := flag.NewFlagSet("revoke", flag.ExitOnError)
	admin := fs.String("admin", "127.0.0.1:7833", "admin address of the serving identctl")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: identctl revoke [-admin addr] <host-ip> [key]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) < 1 || len(rest) > 2 {
		fs.Usage()
		os.Exit(2)
	}
	if _, err := netaddr.ParseIP(rest[0]); err != nil {
		fatal(err)
	}
	line := "revoke " + strings.Join(rest, " ")
	reply, err := adminRoundTrip(*admin, line)
	if err != nil {
		fatal(err)
	}
	if !strings.HasPrefix(reply, "ok ") {
		fatal(fmt.Errorf("controller refused: %s", reply))
	}
	fmt.Printf("identctl: revoked %s flow(s) for %s\n", strings.TrimPrefix(reply, "ok "), rest[0])
}

// listCommands are the drill-down commands whose reply is a count line
// followed by that many detail lines.
var listCommands = map[string]bool{
	"counters": true,
	"shards":   true,
	"hosts":    true,
	"rules":    true,
	"creds":    true,
	"ring":     true,
	"trace":    true,
}

// adminMain is the `identctl admin` subcommand: it sends one admin command
// and prints the reply — the detail lines for drill-down commands, the
// single reply line otherwise.
func adminMain(args []string) {
	fs := flag.NewFlagSet("admin", flag.ExitOnError)
	admin := fs.String("admin", "127.0.0.1:7833", "admin address of the serving identctl")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: identctl admin [-admin addr] <command> [args]")
		fmt.Fprintln(os.Stderr, "commands: status, stats [megaflow|wide|rulecache], counters, shards, hosts, rules, creds, ring [drop <id>], trace [slow|<id>], sweep")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		os.Exit(2)
	}
	line := strings.Join(rest, " ")

	conn, err := net.DialTimeout("tcp", *admin, 5*time.Second)
	if err != nil {
		fatal(fmt.Errorf("dial admin %s: %w", *admin, err))
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
		fatal(err)
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		fatal(fmt.Errorf("admin closed without a reply"))
	}
	head := sc.Text()
	if !strings.HasPrefix(head, "ok") {
		fatal(fmt.Errorf("controller refused: %s", head))
	}
	if listCommands[rest[0]] {
		n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(head, "ok")))
		if err != nil {
			fatal(fmt.Errorf("malformed count line %q", head))
		}
		for i := 0; i < n; i++ {
			if !sc.Scan() {
				fatal(fmt.Errorf("admin closed after %d of %d detail lines", i, n))
			}
			fmt.Println(sc.Text())
		}
		return
	}
	fmt.Println(head)
}

// adminRoundTrip sends one admin line and returns the one-line reply.
func adminRoundTrip(addr, line string) (string, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return "", fmt.Errorf("identctl: dial admin %s: %w", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
		return "", err
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		return "", fmt.Errorf("identctl: admin closed without a reply")
	}
	return sc.Text(), nil
}
