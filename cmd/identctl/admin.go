package main

// The admin channel: a line-oriented TCP listener on the serving
// controller (enabled with -admin), and the `identctl revoke` subcommand
// that speaks to it. This is what makes the revocation plane operable from
// a shell: `identctl revoke 10.0.0.7` tears down every live flow admitted
// on facts from that host; with a key, only the flows whose verdicts read
// that key.
//
// Protocol (one request per line, one reply per line):
//
//	revoke <host-ip> [key]   ->  ok <flows-torn-down> | err <message>
//	sweep                    ->  ok <flows-torn-down>
//	stats                    ->  ok live=<n> registered=<n> dropped=<n>

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"identxx/internal/core"
	"identxx/internal/netaddr"
)

// serveAdmin runs the admin listener until the listener is closed.
func serveAdmin(l net.Listener, ctl *core.Controller) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go func() {
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(30 * time.Second))
			sc := bufio.NewScanner(conn)
			for sc.Scan() {
				fmt.Fprintf(conn, "%s\n", adminCommand(ctl, sc.Text()))
				conn.SetDeadline(time.Now().Add(30 * time.Second))
			}
		}()
	}
}

// adminCommand executes one admin line and renders the reply.
func adminCommand(ctl *core.Controller, line string) string {
	f := strings.Fields(line)
	if len(f) == 0 {
		return "err empty command"
	}
	switch f[0] {
	case "revoke":
		if len(f) < 2 || len(f) > 3 {
			return "err usage: revoke <host-ip> [key]"
		}
		host, err := netaddr.ParseIP(f[1])
		if err != nil {
			return "err " + err.Error()
		}
		key := ""
		if len(f) == 3 {
			key = f[2]
		}
		return fmt.Sprintf("ok %d", ctl.RevokeHost(host, key))
	case "sweep":
		return fmt.Sprintf("ok %d", ctl.SweepLeases())
	case "stats":
		live, registered, dropped := ctl.RevocationIndexStats()
		return fmt.Sprintf("ok live=%d registered=%d dropped=%d", live, registered, dropped)
	default:
		return "err unknown command " + f[0]
	}
}

// revokeMain is the `identctl revoke` subcommand: it connects to a serving
// identctl's admin channel and requests the teardown.
func revokeMain(args []string) {
	fs := flag.NewFlagSet("revoke", flag.ExitOnError)
	admin := fs.String("admin", "127.0.0.1:7833", "admin address of the serving identctl")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: identctl revoke [-admin addr] <host-ip> [key]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) < 1 || len(rest) > 2 {
		fs.Usage()
		os.Exit(2)
	}
	if _, err := netaddr.ParseIP(rest[0]); err != nil {
		fatal(err)
	}
	line := "revoke " + strings.Join(rest, " ")
	reply, err := adminRoundTrip(*admin, line)
	if err != nil {
		fatal(err)
	}
	if !strings.HasPrefix(reply, "ok ") {
		fatal(fmt.Errorf("controller refused: %s", reply))
	}
	fmt.Printf("identctl: revoked %s flow(s) for %s\n", strings.TrimPrefix(reply, "ok "), rest[0])
}

// adminRoundTrip sends one admin line and returns the one-line reply.
func adminRoundTrip(addr, line string) (string, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return "", fmt.Errorf("identctl: dial admin %s: %w", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
		return "", err
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		return "", fmt.Errorf("identctl: admin closed without a reply")
	}
	return sc.Text(), nil
}
