// Command pfcheck parses, compiles and lints PF+=2 policies, and can
// evaluate a test flow against them — the offline companion an
// administrator runs before deploying .control files (§3.4).
//
// Usage:
//
//	pfcheck [-dir /etc/identxx.control.d | files...]
//	        [-explain]
//	        [-flow "tcp 10.0.0.1:4000 > 10.0.0.2:80"]
//	        [-src key=value]... [-dst key=value]...
//
// -explain dumps the compiled decision program: every rule with its
// static key-requirement set (which @src/@dst keys it can read, the
// basis of the controller's per-flow query hints) and whether the
// header-only pre-pass can ever decide a flow under this policy.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"identxx/internal/flow"
	"identxx/internal/pf"
	"identxx/internal/wire"
)

type kvList []string

func (l *kvList) String() string     { return strings.Join(*l, ",") }
func (l *kvList) Set(s string) error { *l = append(*l, s); return nil }

func main() {
	dir := flag.String("dir", "", "directory of .control files (read in alphabetical order)")
	explain := flag.Bool("explain", false, "dump the compiled decision program and per-rule key sets")
	flowSpec := flag.String("flow", "", `flow to evaluate, e.g. "tcp 10.0.0.1:4000 > 10.0.0.2:80"`)
	var srcKV, dstKV kvList
	flag.Var(&srcKV, "src", "source-response key=value (repeatable)")
	flag.Var(&dstKV, "dst", "destination-response key=value (repeatable)")
	flag.Parse()

	var policy *pf.Policy
	var err error
	switch {
	case *dir != "":
		policy, err = pf.LoadControlDir(*dir)
	case flag.NArg() > 0:
		sources := map[string]string{}
		for _, name := range flag.Args() {
			b, rerr := os.ReadFile(name)
			if rerr != nil {
				fatal(rerr)
			}
			sources[name] = string(b)
		}
		policy, err = pf.LoadSources(sources)
	default:
		fmt.Fprintln(os.Stderr, "pfcheck: provide -dir or policy files")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("compiled: %d rules, %d tables, %d dicts, %d macros\n",
		len(policy.Rules), len(policy.Tables), len(policy.Dicts), len(policy.Macros))
	if keys := policy.ReferencedKeys(); len(keys) > 0 {
		fmt.Printf("ident++ keys the controller will query for: %s\n", strings.Join(keys, ", "))
	}
	if *explain {
		policy.Program().Explain(os.Stdout)
	} else {
		for i, r := range policy.Rules {
			fmt.Printf("  %3d  %s\n", i, r)
		}
	}

	if *flowSpec == "" {
		return
	}
	f, err := flow.ParseFive(*flowSpec)
	if err != nil {
		fatal(err)
	}
	in := pf.Input{Flow: f, Src: buildResp(f, srcKV), Dst: buildResp(f, dstKV)}
	d := policy.Evaluate(in)
	fmt.Printf("\nflow %s\n", f)
	fmt.Printf("decision: %s", d.Action)
	if d.Rule != nil {
		fmt.Printf(" (rule at %s: %s)", d.Rule.Pos, d.Rule)
	} else {
		fmt.Printf(" (default)")
	}
	fmt.Println()
	for _, diag := range d.Diags {
		fmt.Printf("diagnostic: %s\n", diag)
	}
	if d.Action == pf.Block {
		os.Exit(1)
	}
}

func buildResp(f flow.Five, kvs kvList) *wire.Response {
	if len(kvs) == 0 {
		return nil
	}
	r := wire.NewResponse(f)
	for _, kv := range kvs {
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			fatal(fmt.Errorf("pfcheck: bad key=value %q", kv))
		}
		r.Add(kv[:eq], kv[eq+1:])
	}
	return r
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pfcheck:", err)
	os.Exit(2)
}
