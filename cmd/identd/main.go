// Command identd runs the ident++ end-host daemon on TCP port 783 (§2).
//
// On a real deployment the daemon would walk the local OS (lsof-style,
// §3.5); this binary instead loads a *host specification* describing the
// users, processes, listeners and patches of the host it answers for —
// which is also what makes it deployable in containers and test rigs where
// the interesting state is synthetic. Application key-value configuration
// (@app blocks, Figure 3) loads from -config.
//
// Host specification format (one directive per line, # comments):
//
//	name pc1
//	ip 192.168.0.5
//	patch MS08-067
//	user alice groups users,research
//	proc alice /usr/bin/skype name=skype version=210 vendor=skype.com type=voip
//	listen alice /usr/bin/skype 5060
//	conn alice /usr/bin/skype tcp :40000 > 192.168.1.1:80
//
// Usage:
//
//	identd -listen :783 -host host.spec [-config /etc/identxx] [-cred host.cred]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"identxx/internal/cred"
	"identxx/internal/daemon"
	"identxx/internal/flow"
	"identxx/internal/hostinfo"
	"identxx/internal/netaddr"
	"identxx/internal/telemetry"
)

func main() {
	listen := flag.String("listen", ":783", "address to serve ident++ queries on")
	hostSpec := flag.String("host", "", "host specification file (required)")
	configDir := flag.String("config", "", "daemon @app configuration directory (*.conf)")
	credFile := flag.String("cred", "", "credential file from `identctl cred issue` (empty = insecure mode)")
	credReload := flag.Duration("cred-reload", time.Minute, "how often to re-read -cred for rotation (0 disables)")
	telemetryAddr := flag.String("telemetry", "", "HTTP listen address for /metrics, /healthz, /readyz (empty disables)")
	telemetryPprof := flag.Bool("telemetry-pprof", false, "mount /debug/pprof/ on the telemetry listener (requires -telemetry; see docs/operations.md before enabling in production)")
	flag.Parse()
	if *hostSpec == "" {
		fmt.Fprintln(os.Stderr, "identd: -host is required")
		os.Exit(2)
	}
	spec, err := os.ReadFile(*hostSpec)
	if err != nil {
		fatal(err)
	}
	host, err := parseHostSpec(string(spec))
	if err != nil {
		fatal(err)
	}
	d := daemon.New(host)
	if *configDir != "" {
		cf, err := daemon.LoadConfigDir(*configDir)
		if err != nil {
			fatal(err)
		}
		d.InstallConfig(cf, true)
	}
	if *credFile != "" {
		ic, err := cred.LoadFile(*credFile)
		if err != nil {
			fatal(err)
		}
		if ic.Host != host.IP {
			fatal(fmt.Errorf("credential %s is for host %s, this daemon answers for %s", *credFile, ic.Host, host.IP))
		}
		d.SetCredential(ic)
		fmt.Printf("identd: credential loaded, expires %s\n", ic.Expiry.Format(time.RFC3339))
		if *credReload > 0 {
			// Rotation loop: the operator drops a fresh credential in place
			// (identctl cred issue -out <same path>) and the daemon re-hellos
			// every live subscription with it before the old one expires — no
			// restart, no resync (the serial does not move).
			go reloadCredential(d, *credFile, *credReload)
		}
	}
	srv := daemon.NewServer(d)
	addr, err := srv.Listen(*listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("identd: answering for host %s (%s) on %s\n", host.Name, host.IP, addr)

	if *telemetryAddr != "" {
		ts := telemetry.NewServer()
		telemetry.RegisterDaemon(ts.Registry, d, telemetry.Label{Key: "host", Value: host.IP.String()})
		telemetry.RegisterBuildInfo(ts.Registry, telemetry.Label{Key: "host", Value: host.IP.String()})
		if *telemetryPprof {
			ts.EnablePprof()
		}
		taddr, err := ts.Start(*telemetryAddr)
		if err != nil {
			fatal(err)
		}
		defer ts.Close()
		fmt.Printf("identd: telemetry on http://%s/metrics\n", taddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("identd: shutting down")
	srv.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "identd:", err)
	os.Exit(1)
}

// reloadCredential re-reads path every interval and installs the file's
// credential when it changes (detected by the authority signature). A
// transient read or parse error keeps the current credential — expiry is
// the controller's concern, and a daemon with a stale credential simply
// loses its sessions at expiry like any other lapsed host.
func reloadCredential(d *daemon.Daemon, path string, interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for range tick.C {
		ic, err := cred.LoadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "identd: credential reload:", err)
			continue
		}
		if cur := d.Credential(); cur != nil && cur.Sig == ic.Sig {
			continue
		}
		d.SetCredential(ic)
		fmt.Printf("identd: credential rotated, expires %s\n", ic.Expiry.Format(time.RFC3339))
	}
}

// parseHostSpec builds a hostinfo.Host from the directive format above.
func parseHostSpec(src string) (*hostinfo.Host, error) {
	name := "host"
	ip := netaddr.MustParseIP("127.0.0.1")
	type procKey struct{ user, path string }
	var host *hostinfo.Host
	procs := map[procKey]*hostinfo.Process{}
	ensureHost := func() *hostinfo.Host {
		if host == nil {
			host = hostinfo.New(name, ip, netaddr.MAC(2))
		}
		return host
	}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		errf := func(format string, args ...any) error {
			return fmt.Errorf("host spec line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "name":
			if host != nil {
				return nil, errf("name must precede users/procs")
			}
			if len(fields) != 2 {
				return nil, errf("usage: name <hostname>")
			}
			name = fields[1]
		case "ip":
			if host != nil {
				return nil, errf("ip must precede users/procs")
			}
			if len(fields) != 2 {
				return nil, errf("usage: ip <addr>")
			}
			parsed, err := netaddr.ParseIP(fields[1])
			if err != nil {
				return nil, errf("%v", err)
			}
			ip = parsed
		case "patch":
			for _, p := range fields[1:] {
				ensureHost().InstallPatch(p)
			}
		case "user":
			if len(fields) < 2 {
				return nil, errf("usage: user <name> [groups a,b]")
			}
			var groups []string
			for i := 2; i+1 < len(fields); i += 2 {
				if fields[i] == "groups" {
					groups = strings.Split(fields[i+1], ",")
				}
			}
			ensureHost().AddUser(fields[1], groups...)
		case "proc":
			if len(fields) < 3 {
				return nil, errf("usage: proc <user> <path> [k=v...]")
			}
			u, ok := ensureHost().UserByName(fields[1])
			if !ok {
				return nil, errf("unknown user %q", fields[1])
			}
			exe := hostinfo.Executable{Path: fields[2]}
			for _, kv := range fields[3:] {
				eq := strings.IndexByte(kv, '=')
				if eq < 0 {
					return nil, errf("bad attribute %q", kv)
				}
				k, v := kv[:eq], kv[eq+1:]
				switch k {
				case "name":
					exe.Name = v
				case "version":
					exe.Version = v
				case "vendor":
					exe.Vendor = v
				case "type":
					exe.Type = v
				default:
					return nil, errf("unknown attribute %q", k)
				}
			}
			procs[procKey{fields[1], fields[2]}] = ensureHost().Exec(u, exe)
		case "listen":
			if len(fields) != 4 {
				return nil, errf("usage: listen <user> <path> <port>")
			}
			p, ok := procs[procKey{fields[1], fields[2]}]
			if !ok {
				return nil, errf("no proc %s %s", fields[1], fields[2])
			}
			port, err := netaddr.ParsePort(fields[3])
			if err != nil {
				return nil, errf("%v", err)
			}
			if err := ensureHost().Listen(p.PID, netaddr.ProtoTCP, port); err != nil {
				return nil, errf("%v", err)
			}
		case "conn":
			// conn <user> <path> tcp :sport > dip:dport
			if len(fields) != 7 || fields[3] != "tcp" || fields[4] == "" ||
				fields[4][0] != ':' || fields[5] != ">" {
				return nil, errf("usage: conn <user> <path> tcp :sport > dip:dport")
			}
			p, ok := procs[procKey{fields[1], fields[2]}]
			if !ok {
				return nil, errf("no proc %s %s", fields[1], fields[2])
			}
			sport, err := netaddr.ParsePort(fields[4][1:])
			if err != nil {
				return nil, errf("%v", err)
			}
			colon := strings.LastIndexByte(fields[6], ':')
			if colon < 0 {
				return nil, errf("bad destination %q", fields[6])
			}
			dip, err := netaddr.ParseIP(fields[6][:colon])
			if err != nil {
				return nil, errf("%v", err)
			}
			dport, err := netaddr.ParsePort(fields[6][colon+1:])
			if err != nil {
				return nil, errf("%v", err)
			}
			if _, err := ensureHost().Connect(p.PID, flow.Five{
				DstIP: dip, Proto: netaddr.ProtoTCP, SrcPort: sport, DstPort: dport,
			}); err != nil {
				return nil, errf("%v", err)
			}
		default:
			return nil, errf("unknown directive %q", fields[0])
		}
	}
	return ensureHost(), nil
}
