package main

import (
	"strings"
	"testing"

	"identxx/internal/flow"
	"identxx/internal/hostinfo"
	"identxx/internal/netaddr"
)

const demoSpec = `
# comment
name pc1
ip 192.168.0.5
patch MS08-001 MS08-067
user alice groups users,research
proc alice /usr/bin/skype name=skype version=210 vendor=skype.com type=voip
conn alice /usr/bin/skype tcp :40000 > 192.168.1.1:80
user www groups daemon
proc www /usr/sbin/httpd name=httpd version=2.2
listen www /usr/sbin/httpd 8080
`

func TestParseHostSpec(t *testing.T) {
	h, err := parseHostSpec(demoSpec)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name != "pc1" || h.IP != netaddr.MustParseIP("192.168.0.5") {
		t.Errorf("host identity = %s %s", h.Name, h.IP)
	}
	if got := h.Patches(); got != "MS08-001 MS08-067" {
		t.Errorf("patches = %q", got)
	}
	// The declared connection resolves to alice's skype.
	f := flow.Five{
		SrcIP: h.IP, DstIP: netaddr.MustParseIP("192.168.1.1"),
		Proto: netaddr.ProtoTCP, SrcPort: 40000, DstPort: 80,
	}
	proc, ok := h.OwnerOf(f, hostinfo.RoleSource)
	if !ok {
		t.Fatal("declared conn did not register")
	}
	if proc.User.Name != "alice" || proc.Exe.Name != "skype" || proc.Exe.Version != "210" {
		t.Errorf("owner = %+v", proc)
	}
	// The listener resolves for inbound flows.
	in := flow.Five{
		SrcIP: netaddr.MustParseIP("10.9.9.9"), DstIP: h.IP,
		Proto: netaddr.ProtoTCP, SrcPort: 555, DstPort: 8080,
	}
	lproc, ok := h.OwnerOf(in, hostinfo.RoleDestination)
	if !ok || lproc.Exe.Name != "httpd" {
		t.Errorf("listener lookup = %+v ok=%v", lproc, ok)
	}
}

func TestParseHostSpecErrors(t *testing.T) {
	cases := []string{
		"bogus directive",
		"user",                       // missing name
		"proc alice /bin/x",          // unknown user
		"user u\nproc u /bin/x k=v",  // unknown attribute key=v? (k is unknown)
		"user u\nproc u /bin/x name", // attribute without '='
		"listen u /bin/x 80",         // no such proc
		"user u\nproc u /bin/x\nconn u /bin/x tcp 40000 > 1.1.1.1:80", // sport missing ':'
		"user u\nproc u /bin/x\nconn u /bin/x tcp :40000 1.1.1.1:80",  // missing '>'
		"user u\nproc u /bin/x\nconn u /bin/x tcp :40000 > 1.1.1.1",   // missing dport
		"ip 300.1.1.1",
		"user u\nname late", // name after host materialized
	}
	for _, src := range cases {
		if _, err := parseHostSpec(src); err == nil {
			t.Errorf("parseHostSpec(%q) should fail", src)
		}
	}
}

func TestParseHostSpecPrivilegedListener(t *testing.T) {
	// Regular users cannot declare privileged listeners, mirroring §5.4.
	_, err := parseHostSpec("user u groups users\nproc u /bin/x\nlisten u /bin/x 80")
	if err == nil || !strings.Contains(err.Error(), "privileged") {
		t.Errorf("err = %v, want privileged-port refusal", err)
	}
}
