// Command identquery is the ident++ client: it asks a daemon about a flow
// and prints the key-value response, sections delimited as on the wire.
//
// Usage:
//
//	identquery -addr 192.168.0.5:783 "tcp 192.168.0.5:40000 > 192.168.1.1:80" [key...]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"identxx/internal/daemon"
	"identxx/internal/flow"
	"identxx/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:783", "daemon address")
	timeout := flag.Duration("timeout", 3*time.Second, "query timeout")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, `usage: identquery -addr host:783 "tcp a.b.c.d:sp > e.f.g.h:dp" [key...]`)
		os.Exit(2)
	}
	f, err := flow.ParseFive(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "identquery:", err)
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	resp, err := daemon.Query(ctx, *addr, wire.Query{Flow: f, Keys: flag.Args()[1:]})
	if err != nil {
		fmt.Fprintln(os.Stderr, "identquery:", err)
		os.Exit(1)
	}
	for i, sec := range resp.Sections {
		if i > 0 {
			fmt.Println()
		}
		for _, p := range sec.Pairs {
			fmt.Printf("%s: %s\n", p.Key, p.Value)
		}
	}
}
