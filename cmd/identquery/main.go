// Command identquery is the ident++ client: it asks a daemon about a flow
// and prints the key-value response, sections delimited as on the wire.
//
// It drives the same query-plane client (internal/query: pooled transport
// under the coalescing/retry engine) the controller and the CI benchmarks
// use, so the CLI exercises the production code path rather than a
// hand-rolled dial.
//
// Usage:
//
//	identquery -addr 192.168.0.5:783 "tcp 192.168.0.5:40000 > 192.168.1.1:80" [key...]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"identxx/internal/flow"
	"identxx/internal/query"
	"identxx/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:783", "daemon address")
	timeout := flag.Duration("timeout", 3*time.Second, "query timeout")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, `usage: identquery -addr host:783 "tcp a.b.c.d:sp > e.f.g.h:dp" [key...]`)
		os.Exit(2)
	}
	f, err := flow.ParseFive(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "identquery:", err)
		os.Exit(2)
	}
	pool := query.NewPool(query.PoolConfig{
		Resolver:       query.FixedResolver(*addr),
		RequestTimeout: *timeout,
	})
	defer pool.Close()
	eng := query.NewEngine(query.Config{
		Lower:          pool,
		RequestTimeout: *timeout,
		Retries:        -1, // one shot: a CLI user retries themselves
	})
	defer eng.Close()
	// The daemon answers about the flow; which endpoint "owns" it only
	// matters for address resolution, and the resolver pins that to -addr.
	resp, _, err := eng.Query(f.SrcIP, wire.Query{Flow: f, Keys: flag.Args()[1:]})
	if err != nil {
		fmt.Fprintln(os.Stderr, "identquery:", err)
		os.Exit(1)
	}
	for i, sec := range resp.Sections {
		if i > 0 {
			fmt.Println()
		}
		for _, p := range sec.Pairs {
			fmt.Printf("%s: %s\n", p.Key, p.Value)
		}
	}
}
