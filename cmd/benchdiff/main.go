// Command benchdiff compares two `go test -bench -benchmem` outputs and
// enforces the repository's performance budgets (README "Allocation
// budget"): an allocs/op regression against the base, or an allocs/op
// value above an absolute budget, fails the run (exit 1); an ns/op
// regression beyond the slack only warns, because wall-time on shared CI
// runners is noisy in ways allocation counts are not.
//
// Usage:
//
//	benchdiff [-ns-warn pct] [-max-allocs regex=N ...] [-json file] base.txt head.txt
//
// -json serializes the whole comparison — per-benchmark base/head
// measurements, deltas, and every gate outcome — to a machine-readable
// report, written even when the gate fails; CI uploads it as the run's
// artifact so regressions can be charted across PRs without re-parsing
// benchmark text.
//
// With -count > 1 runs in the inputs, the minimum per benchmark is used:
// minima are noise-robust for both time and allocation measurements.
//
// Warnings are emitted in GitHub Actions annotation form (::warning::) so
// they surface on the PR without failing it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark's aggregated measurements.
type result struct {
	ns     float64
	bytes  float64
	allocs float64
	seen   bool
	hasMem bool
}

// budget is one -max-allocs rule.
type budget struct {
	re  *regexp.Regexp
	max float64
}

type budgetFlags []budget

func (b *budgetFlags) String() string { return fmt.Sprint(*b) }

func (b *budgetFlags) Set(s string) error {
	eq := strings.LastIndex(s, "=")
	if eq < 0 {
		return fmt.Errorf("want regex=N, got %q", s)
	}
	re, err := regexp.Compile(s[:eq])
	if err != nil {
		return err
	}
	max, err := strconv.ParseFloat(s[eq+1:], 64)
	if err != nil {
		return fmt.Errorf("bad budget in %q: %v", s, err)
	}
	*b = append(*b, budget{re: re, max: max})
	return nil
}

// jsonMeasure is one side's aggregated measurements in the -json report.
type jsonMeasure struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	HasMem      bool    `json:"has_mem"`
}

// jsonBench is one benchmark's comparison row in the -json report.
type jsonBench struct {
	Name            string       `json:"name"`
	Base            *jsonMeasure `json:"base,omitempty"`
	Head            jsonMeasure  `json:"head"`
	AllocsRegressed bool         `json:"allocs_regressed,omitempty"`
	BudgetExceeded  bool         `json:"budget_exceeded,omitempty"`
	NsRegressed     bool         `json:"ns_regressed,omitempty"`
}

// jsonReport is the full serialized comparison -json writes.
type jsonReport struct {
	Benchmarks      []jsonBench `json:"benchmarks"`
	MissingFromHead []string    `json:"missing_from_head,omitempty"`
	Failed          bool        `json:"failed"`
}

func measureOf(r *result) jsonMeasure {
	return jsonMeasure{NsPerOp: r.ns, BytesPerOp: r.bytes, AllocsPerOp: r.allocs, HasMem: r.hasMem}
}

// cpuSuffix strips the trailing -<GOMAXPROCS> go test appends to names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parseFile reads benchmark lines, keeping the minimum of repeated runs.
func parseFile(path string) (map[string]*result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]*result)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := cpuSuffix.ReplaceAllString(fields[0], "")
		r := out[name]
		if r == nil {
			r = &result{}
			out[name] = r
		}
		// fields: name iters v1 unit1 v2 unit2 ... ; units name the value
		// before them.
		for i := 3; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				continue
			}
			keep := func(cur float64) float64 {
				if !r.seen {
					return v
				}
				return min(cur, v)
			}
			switch fields[i] {
			case "ns/op":
				r.ns = keep(r.ns)
			case "B/op":
				r.bytes = keep(r.bytes)
				r.hasMem = true
			case "allocs/op":
				r.allocs = keep(r.allocs)
				r.hasMem = true
			}
		}
		r.seen = true
	}
	return out, sc.Err()
}

func main() {
	var budgets budgetFlags
	nsWarn := flag.Float64("ns-warn", 10, "warn when head ns/op exceeds base by more than this percentage")
	flag.Var(&budgets, "max-allocs", "regex=N absolute allocs/op budget for matching benchmarks (repeatable)")
	jsonOut := flag.String("json", "", "write the full comparison (measurements and gate outcomes) as JSON to this file")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] base.txt head.txt")
		os.Exit(2)
	}
	base, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	head, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(head) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark results in head file")
		os.Exit(2)
	}

	names := make([]string, 0, len(head))
	for n := range head {
		names = append(names, n)
	}
	sort.Strings(names)

	failed := false
	// A benchmark that exists on base but vanished from head silently
	// escapes both the regression check and any budget — surface it.
	baseOnly := make([]string, 0)
	for n := range base {
		if _, ok := head[n]; !ok {
			baseOnly = append(baseOnly, n)
		}
	}
	sort.Strings(baseOnly)
	for _, n := range baseOnly {
		fmt.Printf("::warning::%s present in base but missing from head (renamed or deleted?)\n", n)
	}
	budgetMatched := make([]bool, len(budgets))
	report := jsonReport{Benchmarks: make([]jsonBench, 0, len(names)), MissingFromHead: baseOnly}
	for _, name := range names {
		h := head[name]
		b, inBase := base[name]
		row := jsonBench{Name: name, Head: measureOf(h)}
		if inBase {
			m := measureOf(b)
			row.Base = &m
		}
		switch {
		case inBase && b.hasMem && h.hasMem:
			fmt.Printf("%-60s allocs %5.0f -> %-5.0f ns %9.1f -> %-9.1f\n",
				name, b.allocs, h.allocs, b.ns, h.ns)
		case h.hasMem:
			fmt.Printf("%-60s allocs %5s -> %-5.0f ns %9s -> %-9.1f (new)\n",
				name, "-", h.allocs, "-", h.ns)
		default:
			fmt.Printf("%-60s ns %9.1f\n", name, h.ns)
		}

		if inBase && b.hasMem && h.hasMem && h.allocs > b.allocs {
			fmt.Printf("FAIL: %s allocs/op regressed %.0f -> %.0f\n", name, b.allocs, h.allocs)
			row.AllocsRegressed = true
			failed = true
		}
		for i, bd := range budgets {
			if !bd.re.MatchString(name) {
				continue
			}
			budgetMatched[i] = true
			if h.hasMem && h.allocs > bd.max {
				fmt.Printf("FAIL: %s allocs/op %.0f exceeds budget %.0f\n", name, h.allocs, bd.max)
				row.BudgetExceeded = true
				failed = true
			}
		}
		if inBase && b.ns > 0 && h.ns > b.ns*(1+*nsWarn/100) {
			fmt.Printf("::warning::%s ns/op regressed %.1f -> %.1f (>%g%% slack; timing-only, not failing)\n",
				name, b.ns, h.ns, *nsWarn)
			row.NsRegressed = true
		}
		report.Benchmarks = append(report.Benchmarks, row)
	}
	// A budget rule that matched nothing is a gate checking air — the
	// benchmark was renamed or the regex typo'd. Fail loudly rather than
	// letting the contract silently lapse.
	for i, bd := range budgets {
		if !budgetMatched[i] {
			fmt.Printf("FAIL: -max-allocs rule %q matched no benchmark in head output\n", bd.re)
			failed = true
		}
	}
	// Write the report before the gate exits: a failed gate is exactly
	// when the artifact is most wanted.
	report.Failed = failed
	if *jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff: marshal report:", err)
			os.Exit(2)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
	}
	if failed {
		os.Exit(1)
	}
}
