module identxx

go 1.24
